//! The worker-pool contract: fanning slot DSP out over N workers must
//! not move a single byte of the event trace (or any metric) relative
//! to the serial single-worker run. Dispatch order, RNG draws, and
//! merge order are all pinned in the serial prepare/merge phases, so
//! the pool size is invisible to everything the simulation observes.

use slingshot::DeploymentBuilder;
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::chaos::{FaultKind, FaultTarget, Scenario};
use slingshot_sim::{Nanos, SpanProfiler, SLOT_DURATION};
use slingshot_transport::{UdpCbrSource, UdpSink};

fn small_cell() -> CellConfig {
    CellConfig {
        num_prbs: 24,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    }
}

/// Run a deployment with one uplink flow per cell and return the trace
/// bytes, the trace hash, and the full published-metrics dump.
fn run(seed: u64, cells: usize, workers: usize) -> (Vec<u8>, u64, String) {
    let ues: Vec<UeConfig> = (0..cells)
        .map(|c| UeConfig::new(100 + c as u16, c as u8, &format!("ue-c{c}"), 22.0))
        .collect();
    let mut d = DeploymentBuilder::new()
        .seed(seed)
        .cell(small_cell())
        .cells(cells)
        .workers(workers)
        .ues(ues)
        .build();
    for i in 0..cells {
        d.add_flow(
            i,
            100 + i as u16,
            Box::new(UdpCbrSource::new(3_000_000, 900, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    }
    d.engine.run_until(Nanos::from_millis(150));
    d.publish_metrics();
    let trace = d.engine.event_trace();
    (trace.to_bytes(), trace.hash(), d.engine.metrics().to_text())
}

/// Across 8 seeds, a 4-worker run is byte-identical (trace and
/// metrics) to the 1-worker run of the same seed.
#[test]
fn four_workers_match_single_worker_across_seeds() {
    for seed in 1..=8u64 {
        let (bytes_1, hash_1, metrics_1) = run(seed, 1, 1);
        let (bytes_4, hash_4, metrics_4) = run(seed, 1, 4);
        assert!(!bytes_1.is_empty(), "trace must not be empty (seed {seed})");
        assert_eq!(hash_1, hash_4, "trace hash diverged at seed {seed}");
        assert_eq!(bytes_1, bytes_4, "trace bytes diverged at seed {seed}");
        assert_eq!(metrics_1, metrics_4, "metrics diverged at seed {seed}");
    }
}

/// The same holds on a multi-cell deployment, where per-cell slot work
/// is interleaved in the queue and the merge order matters most.
#[test]
fn multi_cell_parallel_matches_serial() {
    for seed in [3u64, 7] {
        let (bytes_1, hash_1, metrics_1) = run(seed, 2, 1);
        let (bytes_4, hash_4, metrics_4) = run(seed, 2, 4);
        assert!(!bytes_1.is_empty(), "trace must not be empty (seed {seed})");
        assert_eq!(hash_1, hash_4, "trace hash diverged at seed {seed}");
        assert_eq!(bytes_1, bytes_4, "trace bytes diverged at seed {seed}");
        assert_eq!(metrics_1, metrics_4, "metrics diverged at seed {seed}");
    }
}

/// The wall-clock profiler is a side channel: enabling it (with a tight
/// deadline budget, so miss-counting paths run too) must not move a
/// byte of the deterministic trace, and the registry stays clean until
/// an explicit `publish`.
#[test]
fn profiler_never_perturbs_trace_or_metrics() {
    let run_profiled = |seed: u64, workers: usize| {
        let mut d = DeploymentBuilder::new()
            .seed(seed)
            .cell(small_cell())
            .workers(workers)
            .ue(UeConfig::new(100, 0, "ue-c0", 22.0))
            .build();
        d.add_flow(
            0,
            100,
            Box::new(UdpCbrSource::new(3_000_000, 900, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
        d.engine
            .set_profiler(SpanProfiler::with_deadline_ns(SLOT_DURATION.0));
        d.engine.run_until(Nanos::from_millis(150));
        d.publish_metrics();
        let trace = d.engine.event_trace();
        let profile = d.engine.profiler().report().expect("profiler saw slots");
        assert!(profile.slots > 0);
        (trace.to_bytes(), trace.hash(), d.engine.metrics().to_text())
    };
    for seed in [5u64, 11] {
        let (bytes_off, hash_off, metrics_off) = run(seed, 1, 1);
        let (bytes_on, hash_on, metrics_on) = run_profiled(seed, 1);
        assert_eq!(
            hash_off, hash_on,
            "profiler changed trace hash (seed {seed})"
        );
        assert_eq!(
            bytes_off, bytes_on,
            "profiler changed trace bytes (seed {seed})"
        );
        assert_eq!(
            metrics_off, metrics_on,
            "profiler leaked into metrics without publish (seed {seed})"
        );
        let (bytes_w4, ..) = run_profiled(seed, 4);
        assert_eq!(
            bytes_off, bytes_w4,
            "profiled 4-worker run diverged (seed {seed})"
        );
    }
}

/// Chaos smoke under a worker pool: a primary-PHY crash handled while
/// slot DSP runs on 4 workers still satisfies every trace oracle, via
/// the builder's staged-scenario path.
#[test]
fn chaos_crash_scenario_passes_oracles_with_workers() {
    let scenario =
        Scenario::new("crash-w4", 1600).fault(600, FaultTarget::ActivePhy, FaultKind::PhyCrash);
    let mut d = DeploymentBuilder::new()
        .seed(42)
        .cell(small_cell())
        .workers(4)
        .spare_phy(true)
        .ue(UeConfig::new(100, 0, "ue100", 22.0))
        .chaos(scenario)
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    let report = d.run_chaos().expect("scenario was staged");
    assert!(report.ok(), "oracle violations under workers=4: {report:?}");
    // The staged scenario is consumed: a second call is a no-op.
    assert!(d.run_chaos().is_none());
}
