//! The event trace as a determinism oracle: because the simulator is
//! single-threaded and fully seeded, two runs of the same scenario with
//! the same seed must produce byte-identical traces — and a different
//! seed must not.

use slingshot::DeploymentBuilder;
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

/// Run the failover scenario to completion and return the trace bytes
/// plus the trace hash.
fn run_failover(seed: u64) -> (Vec<u8>, u64) {
    let mut d = DeploymentBuilder::new()
        .seed(seed)
        .cell(CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        })
        .ue(UeConfig::new(100, 0, "ue100", 22.0))
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    d.kill_primary_at(Nanos::from_millis(400));
    d.engine.run_until(Nanos::from_millis(900));
    let trace = d.engine.event_trace();
    (trace.to_bytes(), trace.hash())
}

#[test]
fn same_seed_produces_byte_identical_traces() {
    let (bytes_a, hash_a) = run_failover(11);
    let (bytes_b, hash_b) = run_failover(11);
    assert!(!bytes_a.is_empty(), "trace must not be empty");
    assert_eq!(hash_a, hash_b, "trace hashes diverged for equal seeds");
    assert_eq!(bytes_a, bytes_b, "trace bytes diverged for equal seeds");
}

#[test]
fn different_seed_produces_different_trace() {
    let (_, hash_a) = run_failover(11);
    let (_, hash_b) = run_failover(12);
    assert_ne!(hash_a, hash_b, "different seeds must perturb the trace");
}
