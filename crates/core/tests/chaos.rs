//! Chaos-engine integration tests: slot-scheduled and randomized fault
//! scenarios against the full deployment, judged by the trace oracle.
//!
//! These are the DSL ports of the original hand-rolled failover/outage
//! tests plus coverage for the fault kinds only the chaos engine can
//! express (hangs, partitions, restarts, storms).

use slingshot::chaos::{chaos_deployment, run_scenario, ChaosRunner};
use slingshot::{OrionL2Node, SwitchNode, PRIMARY_PHY_ID, RU_ID, SECONDARY_PHY_ID, SPARE_PHY_ID};
use slingshot_ran::{PhyNode, UeNode};
use slingshot_sim::chaos::{oracle, ChaosDistribution, FaultKind, FaultTarget, Scenario};
use slingshot_sim::Nanos;

/// DSL port of `failover_keeps_ue_connected_and_traffic_flowing`: kill
/// the active PHY mid-run; the oracle's five invariants subsume the
/// original's hand-rolled assertions.
#[test]
fn crash_scenario_passes_oracle() {
    let scenario = Scenario::new("crash-active", 2400).fault(
        1000,
        FaultTarget::ActivePhy,
        FaultKind::PhyCrash,
    );
    let mut d = chaos_deployment(11);
    let report = run_scenario(&mut d, &scenario);
    assert!(
        report.ok(),
        "violations: {:?}\nscenario: {}",
        report.violations,
        scenario.describe()
    );
    assert_eq!(report.detections, 1);
    assert!(report.dropped_ttis <= 3, "dropped {}", report.dropped_ttis);
    // The spare was promoted to standby after the failover consumed the
    // secondary (§4.4 re-pairing).
    let ol2 = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    assert_eq!(ol2.standby_of(RU_ID), Some(SPARE_PHY_ID));
    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    assert_eq!(ue.rlf_count, 0);
}

/// DSL port of `planned_migration_drops_zero_ttis_and_no_blackout`.
#[test]
fn planned_migration_scenario_passes_oracle() {
    let scenario = Scenario::new("planned", 2400).fault(
        1000,
        FaultTarget::OrionL2,
        FaultKind::PlannedMigration,
    );
    let mut d = chaos_deployment(12);
    let report = run_scenario(&mut d, &scenario);
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert_eq!(
        report.detections, 0,
        "planned path must not trip the detector"
    );
    assert_eq!(report.dropped_ttis, 0, "planned migration drops zero TTIs");
    // Roles swapped: the old primary is the new standby.
    let ol2 = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    assert_eq!(ol2.primary_of(RU_ID), Some(SECONDARY_PHY_ID));
    assert_eq!(ol2.standby_of(RU_ID), Some(PRIMARY_PHY_ID));
}

/// A gray failure: the active PHY wedges (missing every TTI deadline)
/// without dying. The detector must fire on the missing heartbeats and
/// the RU must migrate; when the revenant wakes up it must not cause a
/// split brain — the switch filters its downlink and its Orion's loss
/// guard keeps it idling on null FAPI as an unpaired warm process.
#[test]
fn hang_scenario_fails_over_without_split_brain() {
    let scenario = Scenario::new("hang-active", 2600).fault(
        1000,
        FaultTarget::ActivePhy,
        FaultKind::PhyHang { slots: 40 },
    );
    let mut d = chaos_deployment(13);
    let report = run_scenario(&mut d, &scenario);
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.detections >= 1);
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    assert_eq!(
        sw.mbox.migrations_executed, 1,
        "exactly one data-plane remap"
    );
    // The revenant's downlink never reached the RU again.
    assert!(sw.mbox.dl_filtered > 0, "zombie downlink must be filtered");
}

/// DSL port of the fronthaul outage coverage: a short full partition of
/// the RU <-> switch link. Heartbeats ride the server links, so the
/// detector must NOT declare a PHY failure (no false failover); the
/// dropped TTIs stay within the window's budget.
#[test]
fn fronthaul_partition_causes_no_false_failover() {
    let scenario = Scenario::new("fh-partition", 2200).fault(
        1000,
        FaultTarget::Fronthaul,
        FaultKind::LinkPartition { slots: 10 },
    );
    let mut d = chaos_deployment(14);
    let report = run_scenario(&mut d, &scenario);
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert_eq!(
        report.detections, 0,
        "partition must not look like a PHY death"
    );
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    assert_eq!(sw.mbox.failures_reported, 0);
    assert_eq!(sw.mbox.migrations_executed, 0);
}

/// Flaky fronthaul: duplicated and reordered packets. The middlebox and
/// PHY must absorb both without duplicate FAPI responses reaching L2.
#[test]
fn dup_and_reorder_scenario_passes_oracle() {
    let scenario = Scenario::new("dup-reorder", 2400)
        .fault(
            900,
            FaultTarget::Fronthaul,
            FaultKind::DupPackets { p: 0.2, slots: 60 },
        )
        .fault(
            1400,
            FaultTarget::Fronthaul,
            FaultKind::ReorderPackets {
                p: 0.15,
                hold: Nanos(80_000),
                slots: 60,
            },
        );
    let mut d = chaos_deployment(15);
    let report = run_scenario(&mut d, &scenario);
    assert!(report.ok(), "violations: {:?}", report.violations);
    // The link actually duplicated frames (the fault was live).
    let stats = d.engine.link_stats(d.switch, d.ru).unwrap();
    let stats_ul = d.engine.link_stats(d.ru, d.switch).unwrap();
    assert!(
        stats.duplicated + stats_ul.duplicated > 0,
        "dup fault never fired"
    );
}

/// The L2-side Orion dies and restarts with retained config (§6's
/// deliberately restartable shim). PHYs must survive on their local
/// loss guards and the FAPI flow must resume after the restart.
#[test]
fn orion_restart_scenario_recovers() {
    let scenario = Scenario::new("orion-restart", 2400).fault(
        1000,
        FaultTarget::OrionL2,
        FaultKind::OrionRestart { down_slots: 10 },
    );
    let mut d = chaos_deployment(16);
    let report = run_scenario(&mut d, &scenario);
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert_eq!(report.detections, 0, "PHYs must outlive an Orion restart");
    // FAPI flow resumed: uplink TTIs delivered well past the outage.
    assert!(
        report.delivered_ttis > 300,
        "delivered {}",
        report.delivered_ttis
    );
    let phy = d.engine.node::<PhyNode>(d.primary_phy).unwrap();
    assert!(
        phy.crash_time.is_none(),
        "loss guard must keep the PHY alive"
    );
}

/// A migration-request storm: the control plane serializes concurrent
/// requests (one in-flight migration per RU) without dropping TTIs.
#[test]
fn migration_storm_is_serialized() {
    let scenario = Scenario::new("storm", 2400).fault(
        1000,
        FaultTarget::OrionL2,
        FaultKind::MigrationStorm { requests: 5 },
    );
    let mut d = chaos_deployment(17);
    let report = run_scenario(&mut d, &scenario);
    assert!(report.ok(), "violations: {:?}", report.violations);
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    assert_eq!(
        sw.mbox.migrations_executed, 1,
        "storm must collapse to one migration"
    );
}

/// Chained faults with apply-time target resolution: after the first
/// crash fails the RU over to the secondary, burst loss lands on the
/// fronthaul while the spare (promoted standby) keeps the cell warm.
#[test]
fn chained_faults_resolve_targets_at_apply_time() {
    let scenario = Scenario::new("chained", 3000)
        .fault(1000, FaultTarget::ActivePhy, FaultKind::PhyCrash)
        .fault(
            1600,
            FaultTarget::Fronthaul,
            FaultKind::BurstLoss { p: 0.1, slots: 40 },
        );
    let mut d = chaos_deployment(18);
    let report = run_scenario(&mut d, &scenario);
    assert!(report.ok(), "violations: {:?}", report.violations);
    // The crash took PHY 1; the active PHY is now the old secondary.
    let active = d
        .engine
        .node_mut::<SwitchNode>(d.switch)
        .unwrap()
        .active_phy(RU_ID);
    assert_eq!(active, SECONDARY_PHY_ID);
}

/// Same deployment seed + same scenario = byte-identical event trace —
/// the property that makes a failing nightly seed reproducible locally.
#[test]
fn chaos_runs_are_byte_identical() {
    let run = |seed: u64| {
        let scenario = ChaosDistribution::default().sample(seed);
        let mut d = chaos_deployment(seed);
        let mut runner = ChaosRunner::new(&scenario);
        runner.run(&mut d, scenario.horizon_slots);
        (
            d.engine.event_trace().to_bytes(),
            d.engine.trace_hash(),
            d.engine.dispatched(),
        )
    };
    let a = run(21);
    let b = run(21);
    assert_eq!(a.1, b.1, "trace hash must match");
    assert_eq!(a.2, b.2, "dispatch count must match");
    assert_eq!(a.0, b.0, "trace bytes must match");
    assert_ne!(run(22).1, a.1, "different seed, different run");
}

/// A couple of fixed random seeds through the full sample -> run ->
/// judge pipeline (the soak harness does this at scale nightly).
#[test]
fn sampled_scenarios_pass_oracle() {
    for seed in [3, 4] {
        let scenario = ChaosDistribution::default().sample(seed);
        let mut d = chaos_deployment(seed);
        let report = run_scenario(&mut d, &scenario);
        assert!(
            report.ok(),
            "seed {seed} violated: {:?}\nscenario: {}",
            report.violations,
            scenario.describe()
        );
    }
}

/// The oracle really judges real runs: a crash scenario held to an
/// impossible 1 ns detection bound must be flagged (sanity check that
/// `run_scenario_with` is not vacuously green).
#[test]
fn oracle_flags_impossible_expectations() {
    let scenario =
        Scenario::new("strict", 2200).fault(1000, FaultTarget::ActivePhy, FaultKind::PhyCrash);
    let mut d = chaos_deployment(19);
    let exp = oracle::Expectations {
        max_detection_latency: Nanos(1),
        ..oracle::Expectations::default()
    };
    let report = slingshot::run_scenario_with(&mut d, &scenario, &exp);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "detection-latency"),
        "in-switch detection cannot be faster than 1 ns; got {:?}",
        report.violations
    );
}
