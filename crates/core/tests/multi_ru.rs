//! Multi-RU co-location tests: two cells sharing two PHY processes
//! with crossed primary/secondary roles (§8's deployment note).

use slingshot::{DeploymentConfig, DualRuDeployment, OrionL2Node, SwitchNode};
use slingshot_ran::{CellConfig, Fidelity, PhyNode, UeConfig, UeNode, UeState};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

fn cfg(seed: u64) -> DeploymentConfig {
    DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        },
        seed,
        ..DeploymentConfig::default()
    }
}

fn build(seed: u64) -> DualRuDeployment {
    let ues0 = vec![UeConfig::new(100, 0, "cell0-ue", 22.0)];
    let ues1 = vec![UeConfig {
        ru_id: 1,
        ..UeConfig::new(200, 1, "cell1-ue", 22.0)
    }];
    let mut d = DualRuDeployment::build(cfg(seed), ues0, ues1);
    d.add_flow(
        0,
        0,
        100,
        Box::new(UdpCbrSource::new(3_000_000, 900, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    d.add_flow(
        1,
        0,
        200,
        Box::new(UdpCbrSource::new(3_000_000, 900, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    d
}

fn sink_rx(d: &DualRuDeployment, rnti: u16) -> u64 {
    let sink: &UdpSink = d
        .engine
        .node::<slingshot_ran::AppServerNode>(d.server)
        .unwrap()
        .app(rnti, 0)
        .unwrap();
    sink.total_rx
}

#[test]
fn both_cells_flow_with_crossed_standbys() {
    let mut d = build(1);
    d.engine.run_until(Nanos::from_millis(1500));
    assert!(sink_rx(&d, 100) > 300, "cell0 rx={}", sink_rx(&d, 100));
    assert!(sink_rx(&d, 200) > 300, "cell1 rx={}", sink_rx(&d, 200));
    // Each PHY does real work (one cell) AND null slots (the other).
    for phy in [d.phy1, d.phy2] {
        let p = d.engine.node::<PhyNode>(phy).unwrap();
        assert!(p.work_slots > 100, "work={}", p.work_slots);
        assert!(p.null_slots > 1000, "null={}", p.null_slots);
    }
}

#[test]
fn one_phy_crash_fails_over_one_cell_without_disturbing_the_other() {
    let mut d = build(2);
    d.engine.run_until(Nanos::from_millis(700));
    d.engine.kill(d.phy1); // primary of cell 0, standby of cell 1
    d.engine.run_until(Nanos::from_millis(2000));

    // Cell 0 failed over to PHY 2 and stayed connected.
    let orion0 = d.engine.node::<OrionL2Node>(d.cells[0].orion_l2).unwrap();
    assert_eq!(orion0.failovers, 1);
    let ue0 = d.engine.node::<UeNode>(d.cells[0].ues[0]).unwrap();
    assert_eq!(ue0.rlf_count, 0);
    assert_eq!(ue0.state, UeState::Connected);

    // Cell 1 (already on PHY 2) was never disturbed; it lost only its
    // standby.
    let orion1 = d.engine.node::<OrionL2Node>(d.cells[1].orion_l2).unwrap();
    assert_eq!(orion1.failovers, 0, "cell1 must not fail over");
    let ue1 = d.engine.node::<UeNode>(d.cells[1].ues[0]).unwrap();
    assert_eq!(ue1.rlf_count, 0);

    // The switch executed exactly one migration (cell 0's).
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    assert_eq!(sw.mbox.migrations_executed, 1);

    // Both cells' traffic still flows — co-resident on PHY 2.
    let before0 = sink_rx(&d, 100);
    let before1 = sink_rx(&d, 200);
    d.engine.run_until(Nanos::from_millis(3000));
    assert!(sink_rx(&d, 100) > before0 + 100, "cell0 resumed");
    assert!(sink_rx(&d, 200) > before1 + 100, "cell1 kept flowing");
    let survivor = d.engine.node::<PhyNode>(d.phy2).unwrap();
    assert!(survivor.crash_time.is_none());
}

#[test]
fn dual_ru_deterministic() {
    let run = |seed| {
        let mut d = build(seed);
        d.engine.run_until(Nanos::from_millis(600));
        d.engine.kill(d.phy1);
        d.engine.run_until(Nanos::from_millis(1000));
        (d.engine.trace_hash(), d.engine.dispatched())
    };
    assert_eq!(run(5), run(5));
}
