//! Fault-injection tests, smoltcp-style: random drops and corruption on
//! the deployment's links must degrade gracefully — codecs reject
//! garbage, HARQ/RLC absorb losses, the failure detector neither
//! misses real failures nor false-fires, and Orion's §6.1 loss guard
//! keeps a starved PHY alive.

use slingshot::chaos::ChaosRunner;
use slingshot::{
    Deployment, DeploymentBuilder, DeploymentConfig, OrionL2Node, OrionPhyNode, SwitchNode,
};
use slingshot_ran::{CellConfig, Fidelity, PhyNode, UeConfig, UeNode, UeState};
use slingshot_sim::chaos::{FaultKind, FaultTarget, Scenario};
use slingshot_sim::{LinkParams, Nanos};
use slingshot_transport::{UdpCbrSource, UdpSink};

fn cfg(seed: u64) -> DeploymentConfig {
    DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        },
        seed,
        ..DeploymentConfig::default()
    }
}

fn with_flow(seed: u64) -> Deployment {
    let mut d = DeploymentBuilder::new()
        .config(cfg(seed))
        .ue(UeConfig::new(100, 0, "ue", 22.0))
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    d
}

fn sink_stats(d: &Deployment) -> (u64, f64) {
    let sink: &UdpSink = d
        .engine
        .node::<slingshot_ran::AppServerNode>(d.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    (sink.total_rx, sink.loss_rate())
}

#[test]
fn lossy_fronthaul_degrades_gracefully() {
    // Expressed in the chaos DSL: 1% random loss on both fronthaul
    // legs for the whole run (4000 slots = 2 s).
    let scenario = Scenario::new("lossy-fh", 4000).fault(
        0,
        FaultTarget::Fronthaul,
        FaultKind::BurstLoss {
            p: 0.01,
            slots: 4000,
        },
    );
    let mut d = with_flow(1);
    ChaosRunner::new(&scenario).run(&mut d, scenario.horizon_slots);
    let (rx, loss) = sink_stats(&d);
    assert!(rx > 500, "rx={rx}");
    assert!(loss < 0.2, "loss={loss}");
    // No false failure detection: heartbeats are redundant enough.
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    assert_eq!(sw.mbox.failures_reported, 0);
    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    assert_eq!(ue.rlf_count, 0);
}

#[test]
fn corrupting_fronthaul_never_panics_and_flows() {
    let mut d = with_flow(2);
    let bad = LinkParams::with_bandwidth(Nanos(20_000), 25_000_000_000)
        .corrupt_chance(0.02)
        .drop_chance(0.005);
    d.engine.reconfigure_link(d.ru, d.switch, bad.clone());
    d.engine.reconfigure_link(d.switch, d.ru, bad);
    d.engine.run_until(Nanos::from_secs(2));
    let (rx, _) = sink_stats(&d);
    assert!(rx > 300, "rx={rx}");
    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    assert_eq!(ue.state, UeState::Connected);
}

#[test]
fn lossy_fapi_transport_triggers_orion_loss_guard() {
    let mut d = with_flow(3);
    // Heavy loss on the L2-side Orion → switch leg (FAPI datagrams).
    let lossy = LinkParams::with_bandwidth(Nanos(2_000), 100_000_000_000).drop_chance(0.05);
    d.engine.reconfigure_link(d.orion_l2, d.switch, lossy);
    d.engine.run_until(Nanos::from_secs(2));
    // §6.1: Orion injected nulls for the lost slots; the PHY survived.
    let guard = d
        .engine
        .node::<OrionPhyNode>(d.orion_primary)
        .unwrap()
        .loss_nulls_injected;
    assert!(guard > 50, "nulls injected = {guard}");
    let phy = d.engine.node::<PhyNode>(d.primary_phy).unwrap();
    assert!(
        phy.crash_time.is_none(),
        "PHY must not starve under FAPI datagram loss"
    );
    // Traffic persists (some loss is fine at 5% signaling drop).
    let (rx, _) = sink_stats(&d);
    assert!(rx > 200, "rx={rx}");
}

#[test]
fn failover_still_works_under_background_loss() {
    // Chaos DSL port: 0.5% background fronthaul loss for the whole run
    // with the active PHY crashing mid-way (slot 1600 = 800 ms).
    let scenario = Scenario::new("loss+crash", 4000)
        .fault(
            0,
            FaultTarget::Fronthaul,
            FaultKind::BurstLoss {
                p: 0.005,
                slots: 4000,
            },
        )
        .fault(1600, FaultTarget::ActivePhy, FaultKind::PhyCrash);
    let mut d = with_flow(4);
    ChaosRunner::new(&scenario).run(&mut d, scenario.horizon_slots);
    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    assert_eq!(orion.failovers, 1);
    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    assert_eq!(ue.rlf_count, 0);
    assert_eq!(ue.state, UeState::Connected);
}

#[test]
fn jittery_server_links_keep_fapi_within_budget() {
    let mut d = with_flow(5);
    for n in [d.orion_l2, d.orion_primary, d.orion_secondary] {
        d.engine.reconfigure_link(
            n,
            d.switch,
            LinkParams::with_bandwidth(Nanos(2_000), 100_000_000_000).jitter(Nanos(20_000)),
        );
        d.engine.reconfigure_link(
            d.switch,
            n,
            LinkParams::with_bandwidth(Nanos(2_000), 100_000_000_000).jitter(Nanos(20_000)),
        );
    }
    d.engine.run_until(Nanos::from_secs(2));
    let phy = d.engine.node::<PhyNode>(d.primary_phy).unwrap();
    assert!(phy.crash_time.is_none());
    let (rx, loss) = sink_stats(&d);
    assert!(rx > 500 && loss < 0.1, "rx={rx} loss={loss}");
}
