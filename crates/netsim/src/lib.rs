//! # slingshot-netsim
//!
//! Ethernet substrate for the Slingshot reproduction: MAC addressing
//! (including the virtual PHY address scheme), Ethernet II frames, and
//! pcap-style frame capture. Links themselves (latency/bandwidth/
//! faults) live in `slingshot-sim`; this crate defines what travels
//! over them.

pub mod capture;
pub mod frame;
pub mod mac;

pub use capture::{Capture, CaptureRecord};
pub use frame::{EtherType, Frame};
pub use mac::MacAddr;
