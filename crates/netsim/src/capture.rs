//! Frame capture, in the spirit of smoltcp's `--pcap` option: any node
//! can mirror the frames it sees into a [`Capture`] for later analysis.
//! The paper's §8.6 inter-packet-gap measurement uses exactly this
//! mechanism (a P4 program timestamping and mirroring downlink packets);
//! our switch model mirrors into a `Capture` instead.

use std::sync::{Arc, Mutex};

use crate::frame::{EtherType, Frame};
use crate::mac::MacAddr;
use slingshot_sim::Nanos;

/// One captured frame with its ingress timestamp.
#[derive(Debug, Clone)]
pub struct CaptureRecord {
    pub at: Nanos,
    pub src: MacAddr,
    pub dst: MacAddr,
    pub ethertype: EtherType,
    pub wire_size: usize,
}

/// A shared, cheaply clonable capture sink. `Send`, so a capturing node
/// can live inside a sharded engine lane; the mutex is uncontended in
/// practice (one switch writes, the harness reads after the run).
#[derive(Debug, Clone, Default)]
pub struct Capture {
    inner: Arc<Mutex<Vec<CaptureRecord>>>,
}

impl Capture {
    pub fn new() -> Capture {
        Capture::default()
    }

    pub fn record(&self, at: Nanos, frame: &Frame) {
        self.inner.lock().unwrap().push(CaptureRecord {
            at,
            src: frame.src,
            dst: frame.dst,
            ethertype: frame.ethertype,
            wire_size: frame.wire_size(),
        });
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<CaptureRecord> {
        self.inner.lock().unwrap().clone()
    }

    /// Inter-arrival gaps (ns) between consecutive captured frames
    /// matching `pred`, in capture order. This reproduces the paper's
    /// §8.6 measurement of the maximum inter-packet gap in a healthy
    /// PHY's downlink stream (393 µs measured → 450 µs timeout chosen).
    pub fn inter_packet_gaps<F>(&self, pred: F) -> Vec<u64>
    where
        F: Fn(&CaptureRecord) -> bool,
    {
        let recs = self.inner.lock().unwrap();
        let times: Vec<Nanos> = recs.iter().filter(|r| pred(r)).map(|r| r.at).collect();
        times.windows(2).map(|w| (w[1] - w[0]).0).collect()
    }

    /// Total captured bytes matching `pred`.
    pub fn bytes_where<F>(&self, pred: F) -> u64
    where
        F: Fn(&CaptureRecord) -> bool,
    {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.wire_size as u64)
            .sum()
    }

    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn frame(src: MacAddr, len: usize) -> Frame {
        Frame::new(
            MacAddr::for_phy(0),
            src,
            EtherType::Ecpri,
            Bytes::from(vec![0; len]),
        )
    }

    #[test]
    fn records_and_clones_share_storage() {
        let cap = Capture::new();
        let cap2 = cap.clone();
        cap.record(Nanos(10), &frame(MacAddr::for_ru(1), 100));
        cap2.record(Nanos(20), &frame(MacAddr::for_ru(2), 50));
        assert_eq!(cap.len(), 2);
        assert_eq!(cap2.len(), 2);
    }

    #[test]
    fn inter_packet_gaps_filtered() {
        let cap = Capture::new();
        let a = MacAddr::for_ru(1);
        let b = MacAddr::for_ru(2);
        cap.record(Nanos(0), &frame(a, 10));
        cap.record(Nanos(5), &frame(b, 10));
        cap.record(Nanos(100), &frame(a, 10));
        cap.record(Nanos(450), &frame(a, 10));
        let gaps = cap.inter_packet_gaps(|r| r.src == a);
        assert_eq!(gaps, vec![100, 350]);
    }

    #[test]
    fn bytes_where_sums_wire_size() {
        let cap = Capture::new();
        let a = MacAddr::for_ru(1);
        cap.record(Nanos(0), &frame(a, 100));
        cap.record(Nanos(1), &frame(a, 100));
        // wire size = 14 + 100 + 4 = 118 each.
        assert_eq!(cap.bytes_where(|r| r.src == a), 236);
        assert_eq!(cap.bytes_where(|r| r.src == MacAddr::ZERO), 0);
    }

    #[test]
    fn clear_empties() {
        let cap = Capture::new();
        cap.record(Nanos(0), &frame(MacAddr::for_ru(1), 10));
        assert!(!cap.is_empty());
        cap.clear();
        assert!(cap.is_empty());
    }
}
