//! Ethernet II frames.
//!
//! All inter-server traffic in the reproduction — fronthaul (eCPRI),
//! Orion's FAPI-over-UDP transport, and switch control packets — travels
//! as [`Frame`]s whose payloads are produced by the real protocol codecs.

use bytes::Bytes;

use crate::mac::MacAddr;
use slingshot_sim::SimRng;

/// EtherType values used in the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// eCPRI, as used by O-RAN split 7.2x fronthaul.
    Ecpri,
    /// IPv4 (Orion FAPI-over-UDP and user-plane traffic).
    Ipv4,
    /// Switch control/notification packets (migration commands, failure
    /// notifications, timer ticks). A locally assigned experimental type.
    SlingshotCtl,
    /// Anything else.
    Other(u16),
}

impl EtherType {
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Ecpri => 0xAEFE,
            EtherType::Ipv4 => 0x0800,
            EtherType::SlingshotCtl => 0x88B5,
            EtherType::Other(v) => v,
        }
    }

    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0xAEFE => EtherType::Ecpri,
            0x0800 => EtherType::Ipv4,
            0x88B5 => EtherType::SlingshotCtl,
            other => EtherType::Other(other),
        }
    }
}

/// Ethernet header bytes on the wire (dst + src + ethertype).
pub const ETH_HEADER_LEN: usize = 14;

/// Frame check sequence length (accounted in wire size).
pub const ETH_FCS_LEN: usize = 4;

/// An Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
    pub payload: Bytes,
}

impl Frame {
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Bytes) -> Frame {
        Frame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Total on-wire size including header and FCS (no preamble).
    pub fn wire_size(&self) -> usize {
        ETH_HEADER_LEN + self.payload.len() + ETH_FCS_LEN
    }

    /// Serialize to wire bytes (header + payload; FCS omitted — links
    /// model corruption explicitly instead of via checksums here).
    pub fn to_bytes(&self) -> Bytes {
        let mut v = Vec::with_capacity(ETH_HEADER_LEN + self.payload.len());
        v.extend_from_slice(&self.dst.0);
        v.extend_from_slice(&self.src.0);
        v.extend_from_slice(&self.ethertype.as_u16().to_be_bytes());
        v.extend_from_slice(&self.payload);
        Bytes::from(v)
    }

    /// Parse from wire bytes.
    pub fn from_bytes(b: &[u8]) -> Option<Frame> {
        if b.len() < ETH_HEADER_LEN {
            return None;
        }
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&b[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&b[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([b[12], b[13]]));
        Some(Frame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: Bytes::copy_from_slice(&b[ETH_HEADER_LEN..]),
        })
    }

    /// Flip one random byte of the payload — the fault injector's
    /// corruption model (mirrors smoltcp's `--corrupt-chance`).
    pub fn corrupt_payload(&mut self, rng: &mut SimRng) -> bool {
        if self.payload.is_empty() {
            return false;
        }
        let mut v = self.payload.to_vec();
        let idx = rng.below(v.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        v[idx] ^= 1 << bit;
        self.payload = Bytes::from(v);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(
            MacAddr::for_phy(1),
            MacAddr::for_ru(2),
            EtherType::Ecpri,
            Bytes::from_static(b"hello fronthaul"),
        )
    }

    #[test]
    fn wire_roundtrip() {
        let f = sample();
        let parsed = Frame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn wire_size_accounts_header_and_fcs() {
        let f = sample();
        assert_eq!(f.wire_size(), 14 + 15 + 4);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Frame::from_bytes(&[0u8; 13]).is_none());
        assert!(Frame::from_bytes(&[]).is_none());
    }

    #[test]
    fn ethertype_roundtrip() {
        for et in [
            EtherType::Ecpri,
            EtherType::Ipv4,
            EtherType::SlingshotCtl,
            EtherType::Other(0x1234),
        ] {
            assert_eq!(EtherType::from_u16(et.as_u16()), et);
        }
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let mut f = sample();
        let before = f.payload.clone();
        let mut rng = SimRng::new(1);
        assert!(f.corrupt_payload(&mut rng));
        let diff: u32 = before
            .iter()
            .zip(f.payload.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn empty_payload_cannot_corrupt() {
        let mut f = Frame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::Ipv4, Bytes::new());
        let mut rng = SimRng::new(1);
        assert!(!f.corrupt_payload(&mut rng));
    }
}
