//! 48-bit MAC addresses, including the "virtual PHY address" scheme the
//! paper's RUs use so the in-switch middlebox can retarget fronthaul
//! traffic without reconfiguring the RU.

use std::fmt;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Deterministic address for an RU, derived from its operator-assigned
    /// logical id.
    pub fn for_ru(id: u8) -> MacAddr {
        MacAddr([0x02, 0x52, 0x55, 0x00, 0x00, id])
    }

    /// Deterministic address for a PHY server NIC.
    pub fn for_phy(id: u8) -> MacAddr {
        MacAddr([0x02, 0x50, 0x48, 0x00, 0x00, id])
    }

    /// Deterministic address for an L2 server NIC.
    pub fn for_l2(id: u8) -> MacAddr {
        MacAddr([0x02, 0x4c, 0x32, 0x00, 0x00, id])
    }

    /// The *virtual* PHY address an RU sends fronthaul uplink to. The
    /// in-switch middlebox translates it to the current primary PHY's
    /// physical address (paper §5.1).
    pub fn virtual_phy(ru_id: u8) -> MacAddr {
        MacAddr([0x02, 0x56, 0x50, 0x00, 0x00, ru_id])
    }

    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }

    /// Locally administered bit (bit 1 of the first octet).
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    pub fn to_bytes(self) -> [u8; 6] {
        self.0
    }

    pub fn from_bytes(b: [u8; 6]) -> MacAddr {
        MacAddr(b)
    }

    /// Compact u64 form (upper 16 bits zero) — handy as a table key in
    /// the switch model.
    pub fn as_u64(self) -> u64 {
        let mut v = 0u64;
        for b in self.0 {
            v = (v << 8) | b as u64;
        }
        v
    }

    pub fn from_u64(v: u64) -> MacAddr {
        let mut b = [0u8; 6];
        for (i, byte) in b.iter_mut().enumerate() {
            *byte = (v >> (8 * (5 - i))) as u8;
        }
        MacAddr(b)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        assert_eq!(
            MacAddr([0x02, 0x50, 0x48, 0, 0, 0x1f]).to_string(),
            "02:50:48:00:00:1f"
        );
    }

    #[test]
    fn u64_roundtrip() {
        for mac in [
            MacAddr::ZERO,
            MacAddr::BROADCAST,
            MacAddr::for_ru(7),
            MacAddr::for_phy(255),
            MacAddr::virtual_phy(0),
        ] {
            assert_eq!(MacAddr::from_u64(mac.as_u64()), mac);
        }
    }

    #[test]
    fn derived_addresses_distinct() {
        let mut all = vec![];
        for id in 0..=255u8 {
            all.push(MacAddr::for_ru(id));
            all.push(MacAddr::for_phy(id));
            all.push(MacAddr::for_l2(id));
            all.push(MacAddr::virtual_phy(id));
        }
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn local_bit_set_on_derived() {
        assert!(MacAddr::for_ru(1).is_local());
        assert!(MacAddr::virtual_phy(9).is_local());
        assert!(!MacAddr::ZERO.is_local());
    }

    #[test]
    fn broadcast_detection() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::for_phy(1).is_broadcast());
    }
}
