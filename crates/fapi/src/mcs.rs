//! MCS (modulation and coding scheme) table and transport block sizing,
//! modeled on TS 38.214 Table 5.1.3.1-2 (the 256-QAM table).
//!
//! The L2 scheduler picks an MCS per UE per slot from the PHY's
//! reported SNR; the PHY maps it to a modulation order and code rate.

use slingshot_phy_dsp::Modulation;

/// One MCS table row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McsRow {
    pub index: u8,
    pub modulation: Modulation,
    /// Target code rate × 1024.
    pub rate_x1024: u16,
}

impl McsRow {
    pub fn code_rate(&self) -> f64 {
        self.rate_x1024 as f64 / 1024.0
    }

    /// Information bits per modulated symbol.
    pub fn spectral_efficiency(&self) -> f64 {
        self.modulation.bits_per_symbol() as f64 * self.code_rate()
    }
}

/// The MCS table (a representative subset of 38.214's 256-QAM table).
pub const MCS_TABLE: [McsRow; 20] = [
    McsRow {
        index: 0,
        modulation: Modulation::Qpsk,
        rate_x1024: 120,
    },
    McsRow {
        index: 1,
        modulation: Modulation::Qpsk,
        rate_x1024: 193,
    },
    McsRow {
        index: 2,
        modulation: Modulation::Qpsk,
        rate_x1024: 308,
    },
    McsRow {
        index: 3,
        modulation: Modulation::Qpsk,
        rate_x1024: 449,
    },
    McsRow {
        index: 4,
        modulation: Modulation::Qpsk,
        rate_x1024: 602,
    },
    McsRow {
        index: 5,
        modulation: Modulation::Qam16,
        rate_x1024: 378,
    },
    McsRow {
        index: 6,
        modulation: Modulation::Qam16,
        rate_x1024: 434,
    },
    McsRow {
        index: 7,
        modulation: Modulation::Qam16,
        rate_x1024: 490,
    },
    McsRow {
        index: 8,
        modulation: Modulation::Qam16,
        rate_x1024: 553,
    },
    McsRow {
        index: 9,
        modulation: Modulation::Qam16,
        rate_x1024: 616,
    },
    McsRow {
        index: 10,
        modulation: Modulation::Qam16,
        rate_x1024: 658,
    },
    McsRow {
        index: 11,
        modulation: Modulation::Qam64,
        rate_x1024: 466,
    },
    McsRow {
        index: 12,
        modulation: Modulation::Qam64,
        rate_x1024: 517,
    },
    McsRow {
        index: 13,
        modulation: Modulation::Qam64,
        rate_x1024: 567,
    },
    McsRow {
        index: 14,
        modulation: Modulation::Qam64,
        rate_x1024: 616,
    },
    McsRow {
        index: 15,
        modulation: Modulation::Qam64,
        rate_x1024: 666,
    },
    McsRow {
        index: 16,
        modulation: Modulation::Qam64,
        rate_x1024: 719,
    },
    McsRow {
        index: 17,
        modulation: Modulation::Qam256,
        rate_x1024: 682,
    },
    McsRow {
        index: 18,
        modulation: Modulation::Qam256,
        rate_x1024: 754,
    },
    McsRow {
        index: 19,
        modulation: Modulation::Qam256,
        rate_x1024: 822,
    },
];

/// Look up an MCS row; indices past the table clamp to the top entry.
pub fn mcs(index: u8) -> McsRow {
    let i = (index as usize).min(MCS_TABLE.len() - 1);
    MCS_TABLE[i]
}

/// Highest MCS index.
pub fn max_mcs() -> u8 {
    (MCS_TABLE.len() - 1) as u8
}

/// Transport block size in *bytes* for an allocation of `num_prb` PRBs
/// with `data_symbols` data-bearing OFDM symbols. The result leaves
/// room for the 3-byte TB CRC within the coded budget.
pub fn tbs_bytes(mcs_index: u8, num_prb: u16, data_symbols: u8) -> usize {
    let row = mcs(mcs_index);
    let n_re = num_prb as usize * 12 * data_symbols as usize;
    let info_bits = (n_re as f64 * row.spectral_efficiency()) as usize;
    // Reserve the TB CRC and floor to bytes; minimum 8 bytes.
    (info_bits / 8).saturating_sub(3).max(8)
}

/// Coded-bit budget (e_bits) for the same allocation — what the rate
/// matcher fills.
pub fn e_bits(mcs_index: u8, num_prb: u16, data_symbols: u8) -> usize {
    let row = mcs(mcs_index);
    let n_re = num_prb as usize * 12 * data_symbols as usize;
    n_re * row.modulation.bits_per_symbol()
}

/// Pick the highest MCS whose decode threshold (per the BLER model at
/// the given iteration budget) is at most `snr_db` minus `margin_db`.
pub fn mcs_for_snr(snr_db: f64, margin_db: f64, fec_iterations: usize) -> u8 {
    let mut best = 0u8;
    for row in &MCS_TABLE {
        let th = slingshot_phy_dsp::bler::threshold_db(
            row.modulation.bits_per_symbol(),
            row.code_rate(),
            fec_iterations,
        );
        if th + margin_db <= snr_db {
            best = row.index;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_monotone_in_efficiency() {
        for w in MCS_TABLE.windows(2) {
            assert!(
                w[1].spectral_efficiency() > w[0].spectral_efficiency(),
                "{:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn indices_match_positions() {
        for (i, row) in MCS_TABLE.iter().enumerate() {
            assert_eq!(row.index as usize, i);
        }
    }

    #[test]
    fn lookup_clamps() {
        assert_eq!(mcs(200), MCS_TABLE[MCS_TABLE.len() - 1]);
        assert_eq!(mcs(0), MCS_TABLE[0]);
    }

    #[test]
    fn tbs_scales_with_allocation() {
        let small = tbs_bytes(5, 10, 12);
        let big = tbs_bytes(5, 100, 12);
        assert!(
            big > 9 * small && big < 11 * small,
            "small={small} big={big}"
        );
        assert!(tbs_bytes(19, 10, 12) > tbs_bytes(0, 10, 12));
    }

    #[test]
    fn tbs_minimum() {
        assert_eq!(tbs_bytes(0, 1, 1), 8);
    }

    #[test]
    fn e_bits_matches_re_count() {
        // 10 PRB × 12 SC × 12 symbols × 2 bits (QPSK) = 2880.
        assert_eq!(e_bits(0, 10, 12), 2880);
        assert_eq!(e_bits(17, 10, 12), 11520); // 256-QAM
    }

    #[test]
    fn implied_code_rate_near_target() {
        for row in &MCS_TABLE {
            let tb = tbs_bytes(row.index, 50, 12);
            let e = e_bits(row.index, 50, 12);
            let actual = ((tb + 3) * 8) as f64 / e as f64;
            assert!(
                (actual - row.code_rate()).abs() < 0.02,
                "mcs {} actual {} target {}",
                row.index,
                actual,
                row.code_rate()
            );
        }
    }

    #[test]
    fn mcs_for_snr_monotone() {
        let mut prev = 0;
        for snr in (-5..35).step_by(2) {
            let m = mcs_for_snr(snr as f64, 1.0, 8);
            assert!(m >= prev, "snr={snr}");
            prev = m;
        }
        assert_eq!(mcs_for_snr(-20.0, 1.0, 8), 0);
        assert_eq!(mcs_for_snr(50.0, 1.0, 8), max_mcs());
    }

    #[test]
    fn more_fec_iterations_allow_higher_mcs() {
        // At some mid SNR, a better decoder supports a higher MCS —
        // Fig. 11's mechanism surfaced through the scheduler.
        let snr = 14.0;
        let low = mcs_for_snr(snr, 1.0, 2);
        let high = mcs_for_snr(snr, 1.0, 16);
        assert!(high > low, "low={low} high={high}");
    }
}
