//! FAPI message types (modeled on the Small Cell Forum 5G FAPI PHY API).
//!
//! The FAPI interface is the "narrow waist" between L2 and PHY that
//! Orion interposes on (paper §6). The spec requires the L2 to send
//! `DL_TTI.request` and `UL_TTI.request` in *every* slot — a PHY that
//! stops receiving them is allowed to crash (FlexRAN does). Slingshot's
//! null-FAPI trick (§6.2) sends requests with zero PDUs to keep the
//! secondary PHY alive at negligible cost; [`DlTtiRequest::null`] and
//! [`UlTtiRequest::null`] construct exactly those.

use bytes::Bytes;

use slingshot_sim::SlotId;

/// A downlink shared-channel PDU (PDSCH scheduling entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdschPdu {
    pub rnti: u16,
    pub harq_id: u8,
    /// New-data indicator; toggles for a fresh transport block.
    pub ndi: bool,
    /// Redundancy version of this transmission.
    pub rv: u8,
    pub mcs: u8,
    pub start_prb: u16,
    pub num_prb: u16,
    /// Transport block size in bytes.
    pub tb_bytes: u32,
}

/// An uplink shared-channel PDU (PUSCH grant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PuschPdu {
    pub rnti: u16,
    pub harq_id: u8,
    pub ndi: bool,
    pub rv: u8,
    pub mcs: u8,
    pub start_prb: u16,
    pub num_prb: u16,
    pub tb_bytes: u32,
}

/// `DL_TTI.request`: downlink work for one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlTtiRequest {
    pub ru_id: u8,
    pub slot: SlotId,
    pub pdsch: Vec<PdschPdu>,
}

impl DlTtiRequest {
    /// A null request: protocol-valid, zero signal-processing work.
    pub fn null(ru_id: u8, slot: SlotId) -> DlTtiRequest {
        DlTtiRequest {
            ru_id,
            slot,
            pdsch: Vec::new(),
        }
    }

    pub fn is_null(&self) -> bool {
        self.pdsch.is_empty()
    }
}

/// `UL_TTI.request`: uplink grants for one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UlTtiRequest {
    pub ru_id: u8,
    pub slot: SlotId,
    pub pusch: Vec<PuschPdu>,
}

impl UlTtiRequest {
    pub fn null(ru_id: u8, slot: SlotId) -> UlTtiRequest {
        UlTtiRequest {
            ru_id,
            slot,
            pusch: Vec::new(),
        }
    }

    pub fn is_null(&self) -> bool {
        self.pusch.is_empty()
    }
}

/// `TX_Data.request`: downlink transport-block payloads for a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxDataRequest {
    pub ru_id: u8,
    pub slot: SlotId,
    pub tbs: Vec<(u16, Bytes)>,
}

/// `RX_Data.indication`: decoded uplink payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxDataIndication {
    pub ru_id: u8,
    pub slot: SlotId,
    pub tbs: Vec<RxTb>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxTb {
    pub rnti: u16,
    pub harq_id: u8,
    pub payload: Bytes,
}

/// `CRC.indication`: per-PDU uplink decode outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrcIndication {
    pub ru_id: u8,
    pub slot: SlotId,
    pub crcs: Vec<CrcEntry>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcEntry {
    pub rnti: u16,
    pub harq_id: u8,
    pub ok: bool,
    /// PHY-reported post-equalization SNR ×10 (dB), for scheduler link
    /// adaptation.
    pub snr_x10: i16,
}

/// `UCI.indication`: uplink control (downlink HARQ acknowledgments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UciIndication {
    pub ru_id: u8,
    pub slot: SlotId,
    pub acks: Vec<UciAck>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UciAck {
    pub rnti: u16,
    pub harq_id: u8,
    pub ack: bool,
}

/// `CONFIG.request`: carrier/cell configuration for an RU. The L2-side
/// Orion stores a duplicate of this to initialize secondary PHYs
/// (paper §6.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigRequest {
    pub ru_id: u8,
    pub cell_id: u16,
    pub num_prbs: u16,
    /// TDD pattern string, e.g. "DDDSU".
    pub tdd_pattern: String,
}

/// `SLOT.indication`: the PHY's per-slot tick to the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotIndication {
    pub ru_id: u8,
    pub slot: SlotId,
}

/// `ERROR.indication`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorIndication {
    pub ru_id: u8,
    pub slot: SlotId,
    pub code: u16,
}

/// Any FAPI message.
#[derive(Debug, Clone, PartialEq)]
pub enum FapiMsg {
    Config(ConfigRequest),
    Start { ru_id: u8 },
    Stop { ru_id: u8 },
    SlotInd(SlotIndication),
    DlTti(DlTtiRequest),
    UlTti(UlTtiRequest),
    TxData(TxDataRequest),
    RxData(RxDataIndication),
    CrcInd(CrcIndication),
    UciInd(UciIndication),
    Error(ErrorIndication),
}

impl FapiMsg {
    /// The RU (carrier) this message belongs to.
    pub fn ru_id(&self) -> u8 {
        match self {
            FapiMsg::Config(m) => m.ru_id,
            FapiMsg::Start { ru_id } | FapiMsg::Stop { ru_id } => *ru_id,
            FapiMsg::SlotInd(m) => m.ru_id,
            FapiMsg::DlTti(m) => m.ru_id,
            FapiMsg::UlTti(m) => m.ru_id,
            FapiMsg::TxData(m) => m.ru_id,
            FapiMsg::RxData(m) => m.ru_id,
            FapiMsg::CrcInd(m) => m.ru_id,
            FapiMsg::UciInd(m) => m.ru_id,
            FapiMsg::Error(m) => m.ru_id,
        }
    }

    /// The slot this message refers to, if slot-scoped.
    pub fn slot(&self) -> Option<SlotId> {
        match self {
            FapiMsg::SlotInd(m) => Some(m.slot),
            FapiMsg::DlTti(m) => Some(m.slot),
            FapiMsg::UlTti(m) => Some(m.slot),
            FapiMsg::TxData(m) => Some(m.slot),
            FapiMsg::RxData(m) => Some(m.slot),
            FapiMsg::CrcInd(m) => Some(m.slot),
            FapiMsg::UciInd(m) => Some(m.slot),
            FapiMsg::Error(m) => Some(m.slot),
            _ => None,
        }
    }

    /// True for L2→PHY requests, false for PHY→L2 indications.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            FapiMsg::Config(_)
                | FapiMsg::Start { .. }
                | FapiMsg::Stop { .. }
                | FapiMsg::DlTti(_)
                | FapiMsg::UlTti(_)
                | FapiMsg::TxData(_)
        )
    }
}
