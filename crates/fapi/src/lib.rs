//! # slingshot-fapi
//!
//! FAPI (Small Cell Forum 5G PHY API style) message definitions, the
//! compact wire codec Orion uses for its lean UDP transport (paper
//! §6.1), and the MCS/TBS tables the scheduler and PHY share.
//!
//! FAPI is the "narrow waist" between L2 and PHY implementations that
//! lets Orion provide PHY resilience transparently (paper §3.2, I-3).

pub mod codec;
pub mod mcs;
pub mod messages;

pub use codec::{decode, encode};
pub use mcs::{e_bits, max_mcs, mcs, mcs_for_snr, tbs_bytes, McsRow, MCS_TABLE};
pub use messages::*;
