//! Wire codec for FAPI messages.
//!
//! Orion transports FAPI over a lean UDP-based protocol between servers
//! (paper §6.1); this codec produces the datagram payloads. The format
//! is a compact fixed-layout binary encoding: one type byte, then
//! message fields big-endian.

use bytes::{Buf, BufMut, Bytes};

use crate::messages::*;
use slingshot_sim::SlotId;

const TAG_CONFIG: u8 = 1;
const TAG_START: u8 = 2;
const TAG_STOP: u8 = 3;
const TAG_SLOT_IND: u8 = 4;
const TAG_DL_TTI: u8 = 5;
const TAG_UL_TTI: u8 = 6;
const TAG_TX_DATA: u8 = 7;
const TAG_RX_DATA: u8 = 8;
const TAG_CRC_IND: u8 = 9;
const TAG_UCI_IND: u8 = 10;
const TAG_ERROR: u8 = 11;

/// Upper bound on any repeated-element count; guards against parsing
/// hostile or corrupted datagrams.
const MAX_COUNT: usize = 4096;

fn put_slot(buf: &mut impl BufMut, s: SlotId) {
    buf.put_u16(s.sfn);
    buf.put_u8(s.subframe);
    buf.put_u8(s.slot);
}

fn get_slot(buf: &mut impl Buf) -> Option<SlotId> {
    if buf.remaining() < 4 {
        return None;
    }
    Some(SlotId {
        sfn: buf.get_u16(),
        subframe: buf.get_u8(),
        slot: buf.get_u8(),
    })
}

fn get_count(buf: &mut impl Buf) -> Option<usize> {
    if buf.remaining() < 2 {
        return None;
    }
    let n = buf.get_u16() as usize;
    if n > MAX_COUNT {
        None
    } else {
        Some(n)
    }
}

fn put_bytes(buf: &mut Vec<u8>, b: &Bytes) {
    buf.put_u32(b.len() as u32);
    buf.extend_from_slice(b);
}

fn get_bytes(buf: &mut impl Buf) -> Option<Bytes> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32() as usize;
    if len > 16 * 1024 * 1024 || buf.remaining() < len {
        return None;
    }
    Some(buf.copy_to_bytes(len))
}

// One parameter per wire field, in wire order.
#[allow(clippy::too_many_arguments)]
fn put_sched_pdu(
    buf: &mut Vec<u8>,
    rnti: u16,
    harq_id: u8,
    ndi: bool,
    rv: u8,
    mcs: u8,
    start_prb: u16,
    num_prb: u16,
    tb_bytes: u32,
) {
    buf.put_u16(rnti);
    buf.put_u8(harq_id);
    buf.put_u8(ndi as u8);
    buf.put_u8(rv);
    buf.put_u8(mcs);
    buf.put_u16(start_prb);
    buf.put_u16(num_prb);
    buf.put_u32(tb_bytes);
}

#[allow(clippy::type_complexity)]
fn get_sched_pdu(buf: &mut impl Buf) -> Option<(u16, u8, bool, u8, u8, u16, u16, u32)> {
    if buf.remaining() < 14 {
        return None;
    }
    Some((
        buf.get_u16(),
        buf.get_u8(),
        buf.get_u8() != 0,
        buf.get_u8(),
        buf.get_u8(),
        buf.get_u16(),
        buf.get_u16(),
        buf.get_u32(),
    ))
}

/// Serialize a FAPI message to a datagram payload.
pub fn encode(msg: &FapiMsg) -> Bytes {
    let mut buf = Vec::with_capacity(64);
    match msg {
        FapiMsg::Config(m) => {
            buf.put_u8(TAG_CONFIG);
            buf.put_u8(m.ru_id);
            buf.put_u16(m.cell_id);
            buf.put_u16(m.num_prbs);
            buf.put_u8(m.tdd_pattern.len() as u8);
            buf.extend_from_slice(m.tdd_pattern.as_bytes());
        }
        FapiMsg::Start { ru_id } => {
            buf.put_u8(TAG_START);
            buf.put_u8(*ru_id);
        }
        FapiMsg::Stop { ru_id } => {
            buf.put_u8(TAG_STOP);
            buf.put_u8(*ru_id);
        }
        FapiMsg::SlotInd(m) => {
            buf.put_u8(TAG_SLOT_IND);
            buf.put_u8(m.ru_id);
            put_slot(&mut buf, m.slot);
        }
        FapiMsg::DlTti(m) => {
            buf.put_u8(TAG_DL_TTI);
            buf.put_u8(m.ru_id);
            put_slot(&mut buf, m.slot);
            buf.put_u16(m.pdsch.len() as u16);
            for p in &m.pdsch {
                put_sched_pdu(
                    &mut buf,
                    p.rnti,
                    p.harq_id,
                    p.ndi,
                    p.rv,
                    p.mcs,
                    p.start_prb,
                    p.num_prb,
                    p.tb_bytes,
                );
            }
        }
        FapiMsg::UlTti(m) => {
            buf.put_u8(TAG_UL_TTI);
            buf.put_u8(m.ru_id);
            put_slot(&mut buf, m.slot);
            buf.put_u16(m.pusch.len() as u16);
            for p in &m.pusch {
                put_sched_pdu(
                    &mut buf,
                    p.rnti,
                    p.harq_id,
                    p.ndi,
                    p.rv,
                    p.mcs,
                    p.start_prb,
                    p.num_prb,
                    p.tb_bytes,
                );
            }
        }
        FapiMsg::TxData(m) => {
            buf.put_u8(TAG_TX_DATA);
            buf.put_u8(m.ru_id);
            put_slot(&mut buf, m.slot);
            buf.put_u16(m.tbs.len() as u16);
            for (rnti, payload) in &m.tbs {
                buf.put_u16(*rnti);
                put_bytes(&mut buf, payload);
            }
        }
        FapiMsg::RxData(m) => {
            buf.put_u8(TAG_RX_DATA);
            buf.put_u8(m.ru_id);
            put_slot(&mut buf, m.slot);
            buf.put_u16(m.tbs.len() as u16);
            for tb in &m.tbs {
                buf.put_u16(tb.rnti);
                buf.put_u8(tb.harq_id);
                put_bytes(&mut buf, &tb.payload);
            }
        }
        FapiMsg::CrcInd(m) => {
            buf.put_u8(TAG_CRC_IND);
            buf.put_u8(m.ru_id);
            put_slot(&mut buf, m.slot);
            buf.put_u16(m.crcs.len() as u16);
            for c in &m.crcs {
                buf.put_u16(c.rnti);
                buf.put_u8(c.harq_id);
                buf.put_u8(c.ok as u8);
                buf.put_i16(c.snr_x10);
            }
        }
        FapiMsg::UciInd(m) => {
            buf.put_u8(TAG_UCI_IND);
            buf.put_u8(m.ru_id);
            put_slot(&mut buf, m.slot);
            buf.put_u16(m.acks.len() as u16);
            for a in &m.acks {
                buf.put_u16(a.rnti);
                buf.put_u8(a.harq_id);
                buf.put_u8(a.ack as u8);
            }
        }
        FapiMsg::Error(m) => {
            buf.put_u8(TAG_ERROR);
            buf.put_u8(m.ru_id);
            put_slot(&mut buf, m.slot);
            buf.put_u16(m.code);
        }
    }
    Bytes::from(buf)
}

/// Parse a FAPI message from a datagram payload.
pub fn decode(payload: &[u8]) -> Option<FapiMsg> {
    let mut buf = payload;
    if buf.remaining() < 2 {
        return None;
    }
    let tag = buf.get_u8();
    let ru_id = buf.get_u8();
    match tag {
        TAG_CONFIG => {
            if buf.remaining() < 5 {
                return None;
            }
            let cell_id = buf.get_u16();
            let num_prbs = buf.get_u16();
            let plen = buf.get_u8() as usize;
            if buf.remaining() < plen {
                return None;
            }
            let pattern = std::str::from_utf8(&buf.chunk()[..plen]).ok()?.to_string();
            Some(FapiMsg::Config(ConfigRequest {
                ru_id,
                cell_id,
                num_prbs,
                tdd_pattern: pattern,
            }))
        }
        TAG_START => Some(FapiMsg::Start { ru_id }),
        TAG_STOP => Some(FapiMsg::Stop { ru_id }),
        TAG_SLOT_IND => {
            let slot = get_slot(&mut buf)?;
            Some(FapiMsg::SlotInd(SlotIndication { ru_id, slot }))
        }
        TAG_DL_TTI => {
            let slot = get_slot(&mut buf)?;
            let n = get_count(&mut buf)?;
            let mut pdsch = Vec::with_capacity(n);
            for _ in 0..n {
                let (rnti, harq_id, ndi, rv, mcs, start_prb, num_prb, tb_bytes) =
                    get_sched_pdu(&mut buf)?;
                pdsch.push(PdschPdu {
                    rnti,
                    harq_id,
                    ndi,
                    rv,
                    mcs,
                    start_prb,
                    num_prb,
                    tb_bytes,
                });
            }
            Some(FapiMsg::DlTti(DlTtiRequest { ru_id, slot, pdsch }))
        }
        TAG_UL_TTI => {
            let slot = get_slot(&mut buf)?;
            let n = get_count(&mut buf)?;
            let mut pusch = Vec::with_capacity(n);
            for _ in 0..n {
                let (rnti, harq_id, ndi, rv, mcs, start_prb, num_prb, tb_bytes) =
                    get_sched_pdu(&mut buf)?;
                pusch.push(PuschPdu {
                    rnti,
                    harq_id,
                    ndi,
                    rv,
                    mcs,
                    start_prb,
                    num_prb,
                    tb_bytes,
                });
            }
            Some(FapiMsg::UlTti(UlTtiRequest { ru_id, slot, pusch }))
        }
        TAG_TX_DATA => {
            let slot = get_slot(&mut buf)?;
            let n = get_count(&mut buf)?;
            let mut tbs = Vec::with_capacity(n);
            for _ in 0..n {
                if buf.remaining() < 2 {
                    return None;
                }
                let rnti = buf.get_u16();
                let payload = get_bytes(&mut buf)?;
                tbs.push((rnti, payload));
            }
            Some(FapiMsg::TxData(TxDataRequest { ru_id, slot, tbs }))
        }
        TAG_RX_DATA => {
            let slot = get_slot(&mut buf)?;
            let n = get_count(&mut buf)?;
            let mut tbs = Vec::with_capacity(n);
            for _ in 0..n {
                if buf.remaining() < 3 {
                    return None;
                }
                let rnti = buf.get_u16();
                let harq_id = buf.get_u8();
                let payload = get_bytes(&mut buf)?;
                tbs.push(RxTb {
                    rnti,
                    harq_id,
                    payload,
                });
            }
            Some(FapiMsg::RxData(RxDataIndication { ru_id, slot, tbs }))
        }
        TAG_CRC_IND => {
            let slot = get_slot(&mut buf)?;
            let n = get_count(&mut buf)?;
            let mut crcs = Vec::with_capacity(n);
            for _ in 0..n {
                if buf.remaining() < 6 {
                    return None;
                }
                crcs.push(CrcEntry {
                    rnti: buf.get_u16(),
                    harq_id: buf.get_u8(),
                    ok: buf.get_u8() != 0,
                    snr_x10: buf.get_i16(),
                });
            }
            Some(FapiMsg::CrcInd(CrcIndication { ru_id, slot, crcs }))
        }
        TAG_UCI_IND => {
            let slot = get_slot(&mut buf)?;
            let n = get_count(&mut buf)?;
            let mut acks = Vec::with_capacity(n);
            for _ in 0..n {
                if buf.remaining() < 4 {
                    return None;
                }
                acks.push(UciAck {
                    rnti: buf.get_u16(),
                    harq_id: buf.get_u8(),
                    ack: buf.get_u8() != 0,
                });
            }
            Some(FapiMsg::UciInd(UciIndication { ru_id, slot, acks }))
        }
        TAG_ERROR => {
            let slot = get_slot(&mut buf)?;
            if buf.remaining() < 2 {
                return None;
            }
            Some(FapiMsg::Error(ErrorIndication {
                ru_id,
                slot,
                code: buf.get_u16(),
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot() -> SlotId {
        SlotId {
            sfn: 511,
            subframe: 9,
            slot: 1,
        }
    }

    fn all_messages() -> Vec<FapiMsg> {
        vec![
            FapiMsg::Config(ConfigRequest {
                ru_id: 3,
                cell_id: 42,
                num_prbs: 273,
                tdd_pattern: "DDDSU".into(),
            }),
            FapiMsg::Start { ru_id: 3 },
            FapiMsg::Stop { ru_id: 3 },
            FapiMsg::SlotInd(SlotIndication {
                ru_id: 3,
                slot: slot(),
            }),
            FapiMsg::DlTti(DlTtiRequest {
                ru_id: 3,
                slot: slot(),
                pdsch: vec![PdschPdu {
                    rnti: 0x4601,
                    harq_id: 5,
                    ndi: true,
                    rv: 2,
                    mcs: 9,
                    start_prb: 0,
                    num_prb: 106,
                    tb_bytes: 3821,
                }],
            }),
            FapiMsg::UlTti(UlTtiRequest {
                ru_id: 3,
                slot: slot(),
                pusch: vec![
                    PuschPdu {
                        rnti: 0x4601,
                        harq_id: 1,
                        ndi: false,
                        rv: 0,
                        mcs: 4,
                        start_prb: 0,
                        num_prb: 50,
                        tb_bytes: 900,
                    },
                    PuschPdu {
                        rnti: 0x4602,
                        harq_id: 2,
                        ndi: true,
                        rv: 1,
                        mcs: 11,
                        start_prb: 50,
                        num_prb: 56,
                        tb_bytes: 2000,
                    },
                ],
            }),
            FapiMsg::TxData(TxDataRequest {
                ru_id: 3,
                slot: slot(),
                tbs: vec![(0x4601, Bytes::from_static(b"downlink payload"))],
            }),
            FapiMsg::RxData(RxDataIndication {
                ru_id: 3,
                slot: slot(),
                tbs: vec![RxTb {
                    rnti: 0x4601,
                    harq_id: 1,
                    payload: Bytes::from_static(b"uplink payload"),
                }],
            }),
            FapiMsg::CrcInd(CrcIndication {
                ru_id: 3,
                slot: slot(),
                crcs: vec![CrcEntry {
                    rnti: 0x4601,
                    harq_id: 1,
                    ok: false,
                    snr_x10: 183,
                }],
            }),
            FapiMsg::UciInd(UciIndication {
                ru_id: 3,
                slot: slot(),
                acks: vec![UciAck {
                    rnti: 0x4601,
                    harq_id: 5,
                    ack: true,
                }],
            }),
            FapiMsg::Error(ErrorIndication {
                ru_id: 3,
                slot: slot(),
                code: 0x0101,
            }),
        ]
    }

    #[test]
    fn roundtrip_all_message_types() {
        for msg in all_messages() {
            let bytes = encode(&msg);
            let parsed = decode(&bytes);
            assert_eq!(parsed.as_ref(), Some(&msg), "{msg:?}");
        }
    }

    #[test]
    fn null_requests_are_tiny() {
        let null = FapiMsg::UlTti(UlTtiRequest::null(1, slot()));
        assert!(encode(&null).len() <= 8, "len={}", encode(&null).len());
        assert!(matches!(&null, FapiMsg::UlTti(u) if u.is_null()));
    }

    #[test]
    fn truncation_never_panics_and_fails_cleanly() {
        for msg in all_messages() {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                // Must not panic; may return None or a shorter valid
                // prefix-parse only for list-free messages.
                let _ = decode(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(decode(&[99, 0, 0, 0, 0, 0]).is_none());
        assert!(decode(&[]).is_none());
    }

    #[test]
    fn hostile_counts_rejected() {
        // UL_TTI with count=65535 but no payload.
        let mut buf = vec![6u8, 1, 0, 0, 0, 0, 0xFF, 0xFF];
        buf.extend_from_slice(&[0u8; 10]);
        assert!(decode(&buf).is_none());
    }

    #[test]
    fn slot_and_ru_accessors() {
        for msg in all_messages() {
            assert_eq!(msg.ru_id(), 3);
            if !matches!(
                msg,
                FapiMsg::Config(_) | FapiMsg::Start { .. } | FapiMsg::Stop { .. }
            ) {
                assert_eq!(msg.slot(), Some(slot()));
            }
        }
    }

    #[test]
    fn request_vs_indication_classification() {
        for msg in all_messages() {
            let expect = matches!(
                msg,
                FapiMsg::Config(_)
                    | FapiMsg::Start { .. }
                    | FapiMsg::Stop { .. }
                    | FapiMsg::DlTti(_)
                    | FapiMsg::UlTti(_)
                    | FapiMsg::TxData(_)
            );
            assert_eq!(msg.is_request(), expect);
        }
    }
}
