//! Tofino-style ASIC resource estimation for a pipeline configuration.
//!
//! The paper's §8.6 reports the fraction of switch resources used by
//! Slingshot's data plane for a 256-RU / 256-PHY deployment: crossbar
//! 5.2 %, ALU 10.4 %, gateway 14.1 %, SRAM 5.3 %, hash bits 9.5 %. We
//! reproduce that table by declaring the middlebox's tables, registers,
//! and branch points, and costing them against per-pipeline budgets
//! modeled on a Tofino-1 profile (12 stages × per-stage units).

/// Per-pipeline resource budgets (a Tofino-1-like profile: 12 MAU
/// stages; units are per-pipeline totals).
#[derive(Debug, Clone)]
pub struct ResourceBudget {
    /// Total match crossbar input bytes (12 stages × 128 B exact + 64 B
    /// ternary ≈ 2304 B; we use bytes of match key capacity).
    pub crossbar_bytes: u32,
    /// Stateful/meter ALU instances (4 per stage × 12).
    pub alus: u32,
    /// Gateway (conditional) units (16 per stage × 12).
    pub gateways: u32,
    /// SRAM: 80 blocks of 128 Kb per stage × 12, in kilobits.
    pub sram_kbits: u32,
    /// Hash distribution bits (≈ 4992 per pipe).
    pub hash_bits: u32,
}

impl Default for ResourceBudget {
    fn default() -> ResourceBudget {
        ResourceBudget {
            crossbar_bytes: 2304,
            alus: 48,
            gateways: 192,
            sram_kbits: 12 * 80 * 128,
            hash_bits: 4992,
        }
    }
}

/// A declared exact-match table's resource footprint inputs.
#[derive(Debug, Clone)]
pub struct TableDecl {
    pub name: String,
    pub entries: u32,
    pub key_bits: u32,
    pub value_bits: u32,
}

/// A declared register array's footprint inputs.
#[derive(Debug, Clone)]
pub struct RegisterDecl {
    pub name: String,
    pub cells: u32,
    pub width_bits: u32,
    /// Stateful ALUs needed to access it per pass.
    pub alus: u32,
}

/// A full pipeline declaration.
#[derive(Debug, Clone, Default)]
pub struct PipelineManifest {
    pub tables: Vec<TableDecl>,
    pub registers: Vec<RegisterDecl>,
    /// Conditional branch points in the program.
    pub gateways: u32,
    /// Extra ALUs for arithmetic outside registers (e.g. header math).
    pub extra_alus: u32,
}

impl PipelineManifest {
    pub fn table(mut self, name: &str, entries: u32, key_bits: u32, value_bits: u32) -> Self {
        self.tables.push(TableDecl {
            name: name.into(),
            entries,
            key_bits,
            value_bits,
        });
        self
    }

    pub fn register(mut self, name: &str, cells: u32, width_bits: u32, alus: u32) -> Self {
        self.registers.push(RegisterDecl {
            name: name.into(),
            cells,
            width_bits,
            alus,
        });
        self
    }

    pub fn with_gateways(mut self, n: u32) -> Self {
        self.gateways += n;
        self
    }

    pub fn with_extra_alus(mut self, n: u32) -> Self {
        self.extra_alus += n;
        self
    }
}

/// Estimated usage as fractions of the budget (0.0–1.0 per resource).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUsage {
    pub crossbar: f64,
    pub alu: f64,
    pub gateway: f64,
    pub sram: f64,
    pub hash_bits: f64,
}

impl ResourceUsage {
    /// True when every resource fits within budget.
    pub fn fits(&self) -> bool {
        [
            self.crossbar,
            self.alu,
            self.gateway,
            self.sram,
            self.hash_bits,
        ]
        .iter()
        .all(|f| *f <= 1.0)
    }
}

/// Estimate a manifest's usage against a budget.
pub fn estimate(manifest: &PipelineManifest, budget: &ResourceBudget) -> ResourceUsage {
    let mut crossbar_bytes = 0u32;
    let mut sram_kbits = 0f64;
    let mut hash_bits = 0u32;
    let mut alus = manifest.extra_alus;

    for t in &manifest.tables {
        // The compiler replicates match keys across crossbar units and
        // pads to 16-byte units (calibrated against Tofino compiler
        // output for this pipeline shape).
        crossbar_bytes += (t.key_bits.div_ceil(8)).div_ceil(16) * 32;
        // Exact-match hashing: multi-way hash functions consume about
        // 1.5× the key width plus the index width.
        hash_bits += t.key_bits * 3 / 2 + 32 - (t.entries.max(1)).leading_zeros();
        // Storage: entries × (key + value + overhead), multi-way hash
        // tables allocate a minimum of 4 blocks.
        let bits = t.entries as u64 * (t.key_bits + t.value_bits + 16) as u64;
        // 4-way hashing with two banks per way sets the block floor.
        sram_kbits += block_kbits(bits).max(8.0 * 128.0);
    }
    for r in &manifest.registers {
        alus += r.alus;
        // Register index arrives via hash distribution.
        hash_bits += 32;
        let bits = r.cells as u64 * r.width_bits as u64;
        // Registers pair a data block with a spare for the ALU.
        sram_kbits += block_kbits(bits).max(2.0 * 128.0);
    }
    // Fixed parser/deparser and overhead blocks when non-empty.
    if !manifest.tables.is_empty() || !manifest.registers.is_empty() {
        sram_kbits += 8.0 * 128.0;
    }

    ResourceUsage {
        crossbar: crossbar_bytes as f64 / budget.crossbar_bytes as f64,
        alu: alus as f64 / budget.alus as f64,
        gateway: manifest.gateways as f64 / budget.gateways as f64,
        sram: sram_kbits / budget.sram_kbits as f64,
        hash_bits: hash_bits as f64 / budget.hash_bits as f64,
    }
}

/// SRAM is allocated in 128 Kb blocks.
fn block_kbits(bits: u64) -> f64 {
    let blocks = bits.div_ceil(128 * 1024).max(1);
    (blocks * 128) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_manifest_zero_usage() {
        let u = estimate(&PipelineManifest::default(), &ResourceBudget::default());
        assert_eq!(u.crossbar, 0.0);
        assert_eq!(u.alu, 0.0);
        assert!(u.fits());
    }

    #[test]
    fn usage_scales_with_tables() {
        let small = PipelineManifest::default().table("a", 256, 48, 8);
        let big = PipelineManifest::default()
            .table("a", 256, 48, 8)
            .table("b", 65536, 48, 48);
        let b = ResourceBudget::default();
        let us = estimate(&small, &b);
        let ub = estimate(&big, &b);
        assert!(ub.sram > us.sram);
        assert!(ub.crossbar > us.crossbar);
        assert!(ub.hash_bits > us.hash_bits);
    }

    #[test]
    fn registers_cost_alus() {
        let m = PipelineManifest::default().register("ctr", 256, 32, 2);
        let u = estimate(&m, &ResourceBudget::default());
        assert!((u.alu - 2.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn sram_blocks_round_up() {
        // 1 bit still costs one 128 Kb block.
        let m = PipelineManifest::default().register("tiny", 1, 1, 1);
        let u = estimate(&m, &ResourceBudget::default());
        assert!(u.sram >= 128.0 / (12.0 * 80.0 * 128.0) - 1e-12);
    }

    #[test]
    fn overbudget_detected() {
        let m = PipelineManifest::default().with_extra_alus(100);
        let u = estimate(&m, &ResourceBudget::default());
        assert!(!u.fits());
    }
}
