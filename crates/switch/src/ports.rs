//! Switch port-space bookkeeping.
//!
//! Every deployment used to hand out switch ports with a flat
//! `20 * cell_index` stride, which silently wraps (and collides) once a
//! city-scale build passes ~3k cells. [`PortSpace`] makes allocation
//! explicit: ports are either allocated sequentially (`alloc`) or
//! claimed at a fixed number (`claim`, for layouts with a compatibility
//! guarantee), and any collision panics at build time with both
//! claimants' labels instead of producing a corrupted forwarding table.

use std::collections::HashMap;

use crate::pipeline::PortId;

/// An allocator/auditor for one switch's port numbers.
#[derive(Debug)]
pub struct PortSpace {
    switch: String,
    used: HashMap<u16, String>,
    next: u16,
}

impl PortSpace {
    /// A fresh port space for the switch named `switch` (the name only
    /// appears in collision panics). Sequential allocation starts at 1;
    /// port 0 is left unused to keep "unset" obvious in dumps.
    pub fn new(switch: &str) -> PortSpace {
        PortSpace {
            switch: switch.to_string(),
            used: HashMap::new(),
            next: 1,
        }
    }

    /// Allocate the lowest unused port and register it to `label`.
    pub fn alloc(&mut self, label: &str) -> PortId {
        while self.used.contains_key(&self.next) {
            self.next = self
                .next
                .checked_add(1)
                .unwrap_or_else(|| panic!("switch {}: port space exhausted", self.switch));
        }
        let port = self.next;
        self.used.insert(port, label.to_string());
        self.next += 1;
        port_checked(port)
    }

    /// Claim a specific port for `label`, panicking if it is already
    /// taken (the build-time collision audit for stride-computed
    /// layouts).
    pub fn claim(&mut self, port: PortId, label: &str) -> PortId {
        if port == PortId::CPU {
            panic!(
                "switch {}: {label} claims the reserved CPU port",
                self.switch
            );
        }
        if let Some(prev) = self.used.insert(port.0, label.to_string()) {
            panic!(
                "switch {}: port {} collision: {} vs {}",
                self.switch, port.0, prev, label
            );
        }
        port
    }

    /// Number of ports handed out so far.
    pub fn len(&self) -> usize {
        self.used.len()
    }

    pub fn is_empty(&self) -> bool {
        self.used.is_empty()
    }
}

fn port_checked(port: u16) -> PortId {
    assert_ne!(PortId(port), PortId::CPU, "allocated the reserved CPU port");
    PortId(port)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_sequential_and_skips_claims() {
        let mut ps = PortSpace::new("leaf0");
        ps.claim(PortId(2), "fixed");
        assert_eq!(ps.alloc("a"), PortId(1));
        assert_eq!(ps.alloc("b"), PortId(3));
        assert_eq!(ps.len(), 3);
    }

    #[test]
    #[should_panic(expected = "port 7 collision")]
    fn claim_collision_panics_with_labels() {
        let mut ps = PortSpace::new("leaf0");
        ps.claim(PortId(7), "ru0");
        ps.claim(PortId(7), "phy1");
    }

    #[test]
    #[should_panic(expected = "reserved CPU port")]
    fn cpu_port_is_reserved() {
        let mut ps = PortSpace::new("spine");
        ps.claim(PortId::CPU, "oops");
    }
}
