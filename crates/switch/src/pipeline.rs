//! The switch pipeline abstraction: a program processes one frame at a
//! time against shared switch state and emits forwarding decisions.
//!
//! The engine-facing node wrapper lives in the `slingshot` core crate
//! (which knows the global message enum); this crate keeps the pure
//! data-plane machinery so it is unit-testable in isolation.

use slingshot_netsim::Frame;
use slingshot_sim::Nanos;

/// A switch port. Ports map 1:1 to attached devices (RUs, PHY servers,
/// the L2 server, the controller CPU port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl PortId {
    /// The CPU/controller port (control-plane packets, failure
    /// notifications).
    pub const CPU: PortId = PortId(u16::MAX);
}

/// What the pipeline decided to do with a packet.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchAction {
    /// Emit `frame` out of `port`.
    Forward { port: PortId, frame: Frame },
    /// Drop (filtered).
    Drop,
}

impl SwitchAction {
    /// The egress port if this action forwards, else `None`.
    pub fn forward_to(&self) -> Option<PortId> {
        match self {
            SwitchAction::Forward { port, .. } => Some(*port),
            SwitchAction::Drop => None,
        }
    }
}

/// Per-pipeline-pass fixed latency: a few hundred nanoseconds on real
/// hardware ("negligible added latency", paper §5).
pub const PIPELINE_LATENCY: Nanos = Nanos(400);

/// A data-plane program. One `process` call is one pipeline pass.
///
/// `on_generator_tick` is invoked by the switch's built-in packet
/// generator (the paper emulates timers by injecting `n` generated
/// packets per timeout period `T`, §5.2.2).
pub trait SwitchProgram {
    fn process(&mut self, now: Nanos, ingress: PortId, frame: Frame) -> Vec<SwitchAction>;

    fn on_generator_tick(&mut self, _now: Nanos) -> Vec<SwitchAction> {
        Vec::new()
    }
}

/// A trivial L2 learning-free program forwarding by static destination
/// MAC table — the "conventional RAN deployment" forwarding of §5.1,
/// and the base behavior for non-fronthaul traffic.
#[derive(Debug, Default)]
pub struct StaticForwarder {
    routes: std::collections::HashMap<slingshot_netsim::MacAddr, PortId>,
}

impl StaticForwarder {
    pub fn new() -> StaticForwarder {
        StaticForwarder::default()
    }

    pub fn add_route(&mut self, mac: slingshot_netsim::MacAddr, port: PortId) {
        self.routes.insert(mac, port);
    }

    pub fn route(&self, mac: &slingshot_netsim::MacAddr) -> Option<PortId> {
        self.routes.get(mac).copied()
    }
}

impl SwitchProgram for StaticForwarder {
    fn process(&mut self, _now: Nanos, _ingress: PortId, frame: Frame) -> Vec<SwitchAction> {
        match self.routes.get(&frame.dst) {
            Some(port) => vec![SwitchAction::Forward { port: *port, frame }],
            None => vec![SwitchAction::Drop],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use slingshot_netsim::{EtherType, MacAddr};

    fn frame(dst: MacAddr) -> Frame {
        Frame::new(dst, MacAddr::for_ru(0), EtherType::Ipv4, Bytes::new())
    }

    #[test]
    fn static_forwarder_routes_known_macs() {
        let mut f = StaticForwarder::new();
        f.add_route(MacAddr::for_phy(1), PortId(3));
        let acts = f.process(Nanos(0), PortId(0), frame(MacAddr::for_phy(1)));
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            SwitchAction::Forward { port, frame } => {
                assert_eq!(*port, PortId(3));
                assert_eq!(frame.dst, MacAddr::for_phy(1));
            }
            _ => panic!("expected forward"),
        }
    }

    #[test]
    fn static_forwarder_drops_unknown() {
        let mut f = StaticForwarder::new();
        let acts = f.process(Nanos(0), PortId(0), frame(MacAddr::for_phy(9)));
        assert_eq!(acts, vec![SwitchAction::Drop]);
    }

    #[test]
    fn default_generator_tick_is_empty() {
        let mut f = StaticForwarder::new();
        assert!(f.on_generator_tick(Nanos(0)).is_empty());
    }
}
