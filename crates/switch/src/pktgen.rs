//! The switch's built-in packet generator.
//!
//! Programmable switches lack timers; the paper emulates timeout events
//! by configuring Tofino's packet generator to inject `n` packets per
//! timeout period `T` into the data plane (§5.2.2). With the paper's
//! T = 450 µs and n = 50, a failed PHY is detected within T plus at
//! most one tick (9 µs precision) — at ~50 K generated packets/s of
//! negligible switch load.

use slingshot_sim::Nanos;

/// Packet generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PktGenConfig {
    /// The timeout period being emulated.
    pub period: Nanos,
    /// Generated packets per period.
    pub ticks_per_period: u32,
}

impl PktGenConfig {
    /// The paper's failure-detector configuration: T = 450 µs, n = 50.
    pub fn paper_default() -> PktGenConfig {
        PktGenConfig {
            period: Nanos::from_micros(450),
            ticks_per_period: 50,
        }
    }

    /// Interval between generated packets.
    pub fn tick_interval(&self) -> Nanos {
        Nanos(self.period.0 / self.ticks_per_period as u64)
    }

    /// Worst-case detection precision: one tick interval.
    pub fn precision(&self) -> Nanos {
        self.tick_interval()
    }

    /// Generated packets per second — the switch overhead.
    pub fn packets_per_second(&self) -> f64 {
        self.ticks_per_period as f64 / (self.period.0 as f64 / 1e9)
    }

    /// Worst-case time from actual failure (last heartbeat) to
    /// detection: the counter must reach `n`, which takes between
    /// `period` and `period + tick_interval`.
    pub fn worst_case_detection(&self) -> Nanos {
        self.period + self.tick_interval()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let c = PktGenConfig::paper_default();
        assert_eq!(c.tick_interval(), Nanos::from_micros(9));
        assert_eq!(c.precision(), Nanos::from_micros(9));
        assert!((c.packets_per_second() - 111_111.1).abs() < 1.0);
        assert_eq!(c.worst_case_detection(), Nanos::from_micros(459));
    }

    #[test]
    fn more_ticks_better_precision() {
        let coarse = PktGenConfig {
            period: Nanos::from_micros(450),
            ticks_per_period: 10,
        };
        let fine = PktGenConfig {
            period: Nanos::from_micros(450),
            ticks_per_period: 100,
        };
        assert!(fine.precision() < coarse.precision());
        assert!(fine.packets_per_second() > coarse.packets_per_second());
    }
}
