//! Switch control-plane latency model.
//!
//! Rule updates through the control plane take milliseconds (the paper
//! measures 29 ms at the 99.9th percentile in their testbed, §5.1) —
//! far too slow and too loosely timed to migrate an RU at an exact TTI
//! boundary. This model exists to (a) apply table updates with
//! realistic latency and (b) let the ablation bench quantify *why* the
//! data-plane migration-request mechanism is necessary.

use slingshot_sim::{Nanos, SimRng};

/// Latency model for one control-plane rule update, shaped to the
/// paper's measurement: a lognormal-ish body with a millisecond-scale
/// median and a 29 ms p99.9 tail.
#[derive(Debug, Clone)]
pub struct ControlPlaneModel {
    rng: SimRng,
    median: Nanos,
    sigma: f64,
}

impl ControlPlaneModel {
    pub fn new(rng: SimRng) -> ControlPlaneModel {
        ControlPlaneModel {
            rng,
            // Median ~8 ms; sigma chosen so p99.9 ≈ 29 ms:
            // exp(3.09 * sigma) ≈ 29/8 → sigma ≈ 0.417.
            median: Nanos::from_millis(8),
            sigma: 0.417,
        }
    }

    /// Draw the completion latency for one rule update.
    pub fn update_latency(&mut self) -> Nanos {
        let z = self.rng.gaussian();
        let factor = (self.sigma * z).exp();
        Nanos((self.median.0 as f64 * factor) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingshot_sim::Sampler;

    #[test]
    fn latency_distribution_matches_paper_scale() {
        let mut m = ControlPlaneModel::new(SimRng::new(1));
        let mut s = Sampler::new();
        for _ in 0..100_000 {
            s.record(m.update_latency().0);
        }
        let median = s.median().unwrap() as f64 / 1e6;
        let p999 = s.percentile(99.9).unwrap() as f64 / 1e6;
        assert!((6.0..10.0).contains(&median), "median={median}ms");
        assert!((24.0..36.0).contains(&p999), "p999={p999}ms");
    }

    #[test]
    fn latency_is_orders_slower_than_a_slot() {
        let mut m = ControlPlaneModel::new(SimRng::new(2));
        for _ in 0..1000 {
            // Every update is far slower than a 500 µs TTI — the
            // motivation for data-plane migration requests.
            assert!(m.update_latency() > slingshot_sim::SLOT_DURATION);
        }
    }
}
