//! # slingshot-switch
//!
//! A programmable (P4/Tofino-style) switch model: exact-match tables,
//! data-plane-writable register arrays, a packet generator for timer
//! emulation, a control plane with realistic (millisecond) rule-update
//! latency, and an ASIC resource estimator. The Slingshot fronthaul
//! middlebox and in-switch failure detector (in the `slingshot` crate)
//! are programs written against these primitives.

pub mod control;
pub mod pipeline;
pub mod pktgen;
pub mod ports;
pub mod resources;
pub mod tables;

pub use control::ControlPlaneModel;
pub use pipeline::{PortId, StaticForwarder, SwitchAction, SwitchProgram, PIPELINE_LATENCY};
pub use pktgen::PktGenConfig;
pub use ports::PortSpace;
pub use resources::{estimate, PipelineManifest, ResourceBudget, ResourceUsage};
pub use tables::{ExactTable, RegisterArray, TableFull};
