//! Match-action tables and stateful registers — the P4 building blocks
//! the fronthaul middlebox is written against.
//!
//! The distinction between the two mirrors Tofino's: **tables** are
//! populated only by the control plane (milliseconds), while
//! **registers** can be read *and written* by the data plane at line
//! rate — which is why the paper stores the RU→PHY mapping and the
//! migration request store in registers (§5.1), so a matching fronthaul
//! packet can retarget an RU at an exact TTI boundary without a control
//! plane round trip.

use std::collections::HashMap;

/// An exact-match table: control-plane writable, data-plane readable.
#[derive(Debug, Clone)]
pub struct ExactTable {
    name: String,
    capacity: usize,
    key_bits: u32,
    value_bits: u32,
    entries: HashMap<u64, u64>,
    pub lookups: u64,
    pub hits: u64,
}

impl ExactTable {
    pub fn new(name: &str, capacity: usize, key_bits: u32, value_bits: u32) -> ExactTable {
        assert!(key_bits <= 64 && value_bits <= 64);
        ExactTable {
            name: name.to_string(),
            capacity,
            key_bits,
            value_bits,
            entries: HashMap::new(),
            lookups: 0,
            hits: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    pub fn value_bits(&self) -> u32 {
        self.value_bits
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Control-plane insert. Fails when full (unless overwriting).
    pub fn insert(&mut self, key: u64, value: u64) -> Result<(), TableFull> {
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            return Err(TableFull {
                table: self.name.clone(),
            });
        }
        self.entries.insert(key, value);
        Ok(())
    }

    pub fn remove(&mut self, key: u64) -> Option<u64> {
        self.entries.remove(&key)
    }

    /// Data-plane lookup.
    pub fn lookup(&mut self, key: u64) -> Option<u64> {
        self.lookups += 1;
        let v = self.entries.get(&key).copied();
        if v.is_some() {
            self.hits += 1;
        }
        v
    }
}

/// Error returned when a table is at capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableFull {
    pub table: String,
}

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "table {} is full", self.table)
    }
}

impl std::error::Error for TableFull {}

/// A register array: data-plane readable *and writable* — the mechanism
/// behind data-plane-updatable state.
#[derive(Debug, Clone)]
pub struct RegisterArray {
    name: String,
    width_bits: u32,
    cells: Vec<u64>,
    pub reads: u64,
    pub writes: u64,
}

impl RegisterArray {
    pub fn new(name: &str, size: usize, width_bits: u32) -> RegisterArray {
        assert!(width_bits <= 64);
        RegisterArray {
            name: name.to_string(),
            width_bits,
            cells: vec![0; size],
            reads: 0,
            writes: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn size(&self) -> usize {
        self.cells.len()
    }

    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    fn mask(&self) -> u64 {
        if self.width_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.width_bits) - 1
        }
    }

    pub fn read(&mut self, idx: usize) -> u64 {
        self.reads += 1;
        self.cells[idx]
    }

    pub fn write(&mut self, idx: usize, value: u64) {
        self.writes += 1;
        self.cells[idx] = value & self.mask();
    }

    /// Read-modify-write in one pipeline pass (what a Tofino stateful
    /// ALU does): returns the old value after applying `f`.
    pub fn update(&mut self, idx: usize, f: impl FnOnce(u64) -> u64) -> u64 {
        self.reads += 1;
        self.writes += 1;
        let old = self.cells[idx];
        self.cells[idx] = f(old) & self.mask();
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_insert_lookup_remove() {
        let mut t = ExactTable::new("id_dir", 4, 48, 8);
        t.insert(0xAABB, 7).unwrap();
        assert_eq!(t.lookup(0xAABB), Some(7));
        assert_eq!(t.lookup(0xDEAD), None);
        assert_eq!(t.remove(0xAABB), Some(7));
        assert_eq!(t.lookup(0xAABB), None);
        assert_eq!(t.lookups, 3);
        assert_eq!(t.hits, 1);
    }

    #[test]
    fn table_capacity_enforced() {
        let mut t = ExactTable::new("small", 2, 8, 8);
        t.insert(1, 1).unwrap();
        t.insert(2, 2).unwrap();
        assert!(t.insert(3, 3).is_err());
        // Overwrite of existing key allowed at capacity.
        t.insert(2, 9).unwrap();
        assert_eq!(t.lookup(2), Some(9));
    }

    #[test]
    fn register_read_write_masking() {
        let mut r = RegisterArray::new("ru_to_phy", 256, 8);
        r.write(10, 0x1FF);
        assert_eq!(r.read(10), 0xFF, "masked to width");
        assert_eq!(r.reads, 1);
        assert_eq!(r.writes, 1);
    }

    #[test]
    fn register_update_is_rmw() {
        let mut r = RegisterArray::new("ctr", 4, 16);
        r.write(0, 5);
        let old = r.update(0, |v| v + 1);
        assert_eq!(old, 5);
        assert_eq!(r.read(0), 6);
    }

    #[test]
    fn register_full_width() {
        let mut r = RegisterArray::new("wide", 1, 64);
        r.write(0, u64::MAX);
        assert_eq!(r.read(0), u64::MAX);
    }

    #[test]
    #[should_panic]
    fn register_out_of_bounds_panics() {
        let mut r = RegisterArray::new("x", 2, 8);
        r.read(2);
    }
}
