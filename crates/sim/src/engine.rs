//! The discrete-event simulation engine.
//!
//! The engine owns a set of [`Node`]s identified by [`NodeId`], a priority
//! queue of pending events, and a table of point-to-point links.
//! Nodes exchange messages of a single application-defined type `M`
//! (an enum in the higher-level crates covering Ethernet frames, radio
//! bursts, and control messages). Links model propagation latency,
//! serialization delay at a configured bandwidth, FIFO queueing, and
//! optional fault injection.
//!
//! Event dispatch is single-threaded and deterministic: the same master
//! seed and the same sequence of API calls produce byte-identical event
//! traces (see [`Engine::trace_hash`]). Nodes may offload pure compute
//! within one callback to the engine's [`WorkerPool`]
//! ([`Ctx::worker_pool`]); because jobs carry pre-split RNG streams and
//! results merge in submission order, the trace is independent of the
//! pool's worker count.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use crate::kernels::KernelConfig;
use crate::metrics::MetricsRegistry;
use crate::pool::WorkerPool;
use crate::profiler::SpanProfiler;
use crate::rng::SimRng;
use crate::time::{Nanos, SlotId};
use crate::trace::{TraceBuffer, TraceEventKind};

/// Identifies a node registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Sender id used for events injected from outside the simulation
    /// (test harnesses, experiment scripts).
    pub const EXTERNAL: NodeId = NodeId(usize::MAX);
}

/// Messages exchanged between nodes.
///
/// `wire_size` is the serialized size used to compute transmission delay
/// on bandwidth-limited links; messages that never cross such links may
/// keep the default. `corrupt` is invoked by the fault injector and may
/// flip bits in the payload; the default is a no-op (the message is then
/// dropped instead, which is the conservative interpretation).
pub trait Message: std::fmt::Debug + Send + 'static {
    fn wire_size(&self) -> usize {
        0
    }

    /// Mutate the message as in-flight corruption would. Returns `true`
    /// if corruption was applied; if `false`, the link drops the message
    /// instead.
    fn corrupt(&mut self, _rng: &mut SimRng) -> bool {
        false
    }

    /// Produce a copy of this message for link-level duplication faults.
    /// Returning `None` (the default) means the message type cannot be
    /// duplicated and the link's `dup_chance` is a no-op for it; message
    /// enums typically implement this only for their wire-format variants
    /// (a switch can duplicate an Ethernet frame, not a shared-memory
    /// handle).
    fn duplicate(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// A simulation participant. Nodes react to messages and timers; all
/// side effects go through the [`Ctx`].
pub trait Node<M: Message>: Any + Send {
    /// Called once when the simulation starts, before any event fires.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// A message from `from` has arrived.
    fn on_msg(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// A timer scheduled by this node has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}
}

/// Parameters of a unidirectional point-to-point link.
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: Nanos,
    /// Bits per second; 0 means infinite (no serialization delay).
    pub bandwidth_bps: u64,
    /// Probability of dropping each message.
    pub drop_chance: f64,
    /// Probability of corrupting each message (falls back to a drop if
    /// the message type does not implement corruption).
    pub corrupt_chance: f64,
    /// Additional uniformly distributed latency jitter in [0, jitter].
    pub jitter: Nanos,
    /// Probability of duplicating each message (only applies to message
    /// types whose [`Message::duplicate`] returns `Some`).
    pub dup_chance: f64,
    /// Probability of delaying a message by `reorder_hold`, letting
    /// later-sent messages overtake it.
    pub reorder_chance: f64,
    /// Extra delay applied to messages selected for reordering.
    pub reorder_hold: Nanos,
}

impl LinkParams {
    /// An ideal link with the given latency and no bandwidth limit.
    pub fn ideal(latency: Nanos) -> LinkParams {
        LinkParams {
            latency,
            bandwidth_bps: 0,
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            jitter: Nanos::ZERO,
            dup_chance: 0.0,
            reorder_chance: 0.0,
            reorder_hold: Nanos::ZERO,
        }
    }

    /// A link with latency and a finite bandwidth.
    pub fn with_bandwidth(latency: Nanos, bandwidth_bps: u64) -> LinkParams {
        LinkParams {
            bandwidth_bps,
            ..LinkParams::ideal(latency)
        }
    }

    pub fn drop_chance(mut self, p: f64) -> LinkParams {
        self.drop_chance = p;
        self
    }

    pub fn corrupt_chance(mut self, p: f64) -> LinkParams {
        self.corrupt_chance = p;
        self
    }

    pub fn jitter(mut self, j: Nanos) -> LinkParams {
        self.jitter = j;
        self
    }

    pub fn dup_chance(mut self, p: f64) -> LinkParams {
        self.dup_chance = p;
        self
    }

    /// With probability `p`, hold a message back by `hold` so that
    /// later-sent messages overtake it.
    pub fn reorder(mut self, p: f64, hold: Nanos) -> LinkParams {
        self.reorder_chance = p;
        self.reorder_hold = hold;
        self
    }
}

#[derive(Debug)]
struct Link {
    params: LinkParams,
    /// Time at which the link's transmitter becomes free (FIFO model).
    busy_until: Nanos,
    /// Counters for observability.
    sent: u64,
    dropped: u64,
    corrupted: u64,
    duplicated: u64,
    bytes: u64,
}

/// Per-link statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    pub sent: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub duplicated: u64,
    pub bytes: u64,
}

enum EventKind<M> {
    Msg {
        from: NodeId,
        msg: M,
    },
    Timer {
        token: u64,
    },
    /// Re-run the node's `on_start` — used by [`Engine::restart`] to model
    /// a process restart that re-establishes its timer chains.
    Start,
}

/// `LaneCore::local` sentinel: node is not a member of this lane.
const NOT_LOCAL: u32 = u32::MAX;
/// `LaneCore::alive` states (indexed by node id).
const MEMBER_NONE: u8 = 0;
const MEMBER_DEAD: u8 = 1;
const MEMBER_ALIVE: u8 = 2;

struct QueuedEvent<M> {
    at: Nanos,
    seq: u64,
    dst: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for QueuedEvent<M> {}

impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Engine internals shared with nodes through [`Ctx`].
struct Core<M> {
    now: Nanos,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent<M>>>,
    links: HashMap<(NodeId, NodeId), Link>,
    alive: Vec<bool>,
    names: Vec<String>,
    rng: SimRng,
    trace_hash: u64,
    dispatched: u64,
    trace: TraceBuffer,
    metrics: MetricsRegistry,
    pool: WorkerPool,
    profiler: SpanProfiler,
    kernels: KernelConfig,
}

impl<M> Core<M> {
    /// Record a node death/revival in the event trace, only on actual
    /// state transitions so repeated kills do not pollute the timeline.
    fn set_alive(&mut self, node: NodeId, actor: NodeId, alive: bool) {
        if self.alive[node.0] == alive {
            return;
        }
        self.alive[node.0] = alive;
        let kind = if alive {
            TraceEventKind::NodeRevived
        } else {
            TraceEventKind::NodeKilled
        };
        self.trace.record(self.now, actor, kind, node.0 as u64, 0);
    }
}

impl<M: Message> Core<M> {
    fn push(&mut self, at: Nanos, dst: NodeId, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, dst, kind }));
    }

    fn send_via_link(&mut self, from: NodeId, dst: NodeId, msg: M) -> bool {
        let now = self.now;
        self.send_via_link_at(from, dst, now, msg)
    }

    /// Link transmission whose earliest departure is `depart_floor`
    /// (models local processing completing before the NIC takes over).
    fn send_via_link_at(&mut self, from: NodeId, dst: NodeId, depart_floor: Nanos, msg: M) -> bool {
        let now = depart_floor.max(self.now);
        let link = match self.links.get_mut(&(from, dst)) {
            Some(l) => l,
            None => panic!(
                "no link {} -> {}; use connect() or send_in()",
                self.names.get(from.0).map(String::as_str).unwrap_or("ext"),
                self.names.get(dst.0).map(String::as_str).unwrap_or("?"),
            ),
        };
        match link_transmit(link, &mut self.rng, now, msg) {
            LinkOutcome::Lost => false,
            LinkOutcome::Deliver { arrive, msg, copy } => {
                if let Some(copy) = copy {
                    // The copy lands at the same instant; FIFO seq ordering
                    // preserves the original/copy pair's relative order.
                    self.push(arrive, dst, EventKind::Msg { from, msg: copy });
                }
                self.push(arrive, dst, EventKind::Msg { from, msg });
                true
            }
        }
    }
}

/// Result of pushing one message through a link's fault and timing model.
enum LinkOutcome<M> {
    /// Dropped (fault injection or failed corruption).
    Lost,
    /// Deliver `msg` (and, for duplication faults, `copy` first) at
    /// `arrive`.
    Deliver {
        arrive: Nanos,
        msg: M,
        copy: Option<M>,
    },
}

/// The link model shared by the single-loop and sharded dispatch paths:
/// FIFO serialization at the configured bandwidth, then fault injection.
/// All probability draws come from `rng` (the domain that owns the link)
/// and are gated on a non-zero chance so links without faults consume no
/// RNG state — this keeps pre-existing seeds byte-identical and makes
/// cross-shard sends shard-invariant (the sender's lane always draws).
fn link_transmit<M: Message>(
    link: &mut Link,
    rng: &mut SimRng,
    now: Nanos,
    mut msg: M,
) -> LinkOutcome<M> {
    link.sent += 1;
    let size = msg.wire_size();
    link.bytes += size as u64;
    if link.params.drop_chance > 0.0 && rng.chance(link.params.drop_chance) {
        link.dropped += 1;
        return LinkOutcome::Lost;
    }
    if link.params.corrupt_chance > 0.0 && rng.chance(link.params.corrupt_chance) {
        if msg.corrupt(rng) {
            link.corrupted += 1;
        } else {
            link.dropped += 1;
            return LinkOutcome::Lost;
        }
    }
    // bandwidth 0 = infinite: no serialization delay.
    let tx_time = (size as u64 * 8)
        .saturating_mul(1_000_000_000)
        .checked_div(link.params.bandwidth_bps)
        .map_or(Nanos::ZERO, Nanos);
    let depart = link.busy_until.max(now);
    let done = depart + tx_time;
    link.busy_until = done;
    let params = &link.params;
    let mut arrive = done + params.latency;
    if params.jitter.0 > 0 {
        arrive += Nanos(rng.below(params.jitter.0 + 1));
    }
    if params.reorder_chance > 0.0 && rng.chance(params.reorder_chance) {
        arrive += params.reorder_hold;
    }
    let mut copy = None;
    if params.dup_chance > 0.0 && rng.chance(params.dup_chance) {
        if let Some(c) = msg.duplicate() {
            link.duplicated += 1;
            copy = Some(c);
        }
    }
    LinkOutcome::Deliver { arrive, msg, copy }
}

/// A cross-lane side effect staged during a shard window, applied
/// serially at the next slot barrier in (lane index, emission) order.
/// Keeping kills/restarts in the same FIFO stream as messages preserves
/// a node's emission order across the barrier (e.g. a deferred restart's
/// `Start` event is enqueued before a scrub message emitted right after
/// it).
enum Outbound<M> {
    Msg {
        /// Arrival computed by the sender-lane link model (or direct
        /// delay); quantized up to the barrier instant at drain time.
        arrive: Nanos,
        dst: NodeId,
        from: NodeId,
        msg: M,
    },
    SetAlive {
        node: NodeId,
        actor: NodeId,
        alive: bool,
    },
    Restart {
        node: NodeId,
        actor: NodeId,
    },
}

/// Per-lane engine state for sharded dispatch: one independent event
/// domain (queue, clock, RNG, links, liveness, staged trace) per cell
/// group. Lanes advance in parallel between slot barriers and exchange
/// effects only through their outboxes, drained serially at barriers —
/// so the trace is byte-identical for any shard or worker count.
struct LaneCore<M> {
    now: Nanos,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent<M>>>,
    links: HashMap<(NodeId, NodeId), Link>,
    /// Authoritative liveness for this lane's member nodes, indexed by
    /// node id: `MEMBER_NONE` (not ours), `MEMBER_DEAD`, `MEMBER_ALIVE`.
    alive: Vec<u8>,
    /// Fleet-wide liveness snapshot, rebuilt at each barrier. Cross-lane
    /// `is_alive`/send checks read this (stale by at most one slot); the
    /// destination lane's dispatch-time check stays authoritative.
    alive_view: Arc<Vec<bool>>,
    /// Member node id -> slot in the window's node vector
    /// (`NOT_LOCAL` for non-members). Plain index, no hashing: this is
    /// read on every dispatched event.
    local: Vec<u32>,
    /// Member node ids in registration order.
    members: Vec<usize>,
    names: Arc<Vec<String>>,
    rng: SimRng,
    trace_hash: u64,
    dispatched: u64,
    /// Wall-clock nanoseconds this lane spent executing its windows.
    /// Measurement only — never read by simulation logic, so it cannot
    /// perturb determinism. Drives the scale bench's per-shard
    /// real-time budget (a lane is sustainable when its per-slot busy
    /// time fits within the slot duration).
    busy_ns: u64,
    /// Staged trace events, merged into the global buffer at barriers.
    trace: TraceBuffer,
    outbox: Vec<Outbound<M>>,
    pool: WorkerPool,
    profiler: SpanProfiler,
    kernels: KernelConfig,
}

impl<M> LaneCore<M> {
    fn owns(&self, node: NodeId) -> bool {
        self.local.get(node.0).is_some_and(|&s| s != NOT_LOCAL)
    }

    fn node_alive(&self, node: NodeId) -> bool {
        match self.alive.get(node.0).copied().unwrap_or(MEMBER_NONE) {
            MEMBER_ALIVE => true,
            MEMBER_DEAD => false,
            _ => self.alive_view.get(node.0).copied().unwrap_or(false),
        }
    }

    /// Record a member death/revival (transitions only), staging the
    /// trace event for the barrier merge.
    fn set_alive_local(&mut self, node: NodeId, actor: NodeId, alive: bool) {
        let slot = &mut self.alive[node.0];
        assert!(*slot != MEMBER_NONE, "not a lane member");
        let next = if alive { MEMBER_ALIVE } else { MEMBER_DEAD };
        if *slot == next {
            return;
        }
        *slot = next;
        let kind = if alive {
            TraceEventKind::NodeRevived
        } else {
            TraceEventKind::NodeKilled
        };
        self.trace.record(self.now, actor, kind, node.0 as u64, 0);
    }
}

impl<M: Message> LaneCore<M> {
    fn push(&mut self, at: Nanos, dst: NodeId, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, dst, kind }));
    }

    /// Send along a link owned by this lane. Same-lane deliveries go to
    /// the local queue; cross-lane ones are staged on the outbox (the
    /// sender's link model and RNG already ran, so the outcome does not
    /// depend on shard count).
    fn send_via_link_at(&mut self, from: NodeId, dst: NodeId, depart_floor: Nanos, msg: M) -> bool {
        let now = depart_floor.max(self.now);
        let link = match self.links.get_mut(&(from, dst)) {
            Some(l) => l,
            None => panic!(
                "no link {} -> {}; use connect() or send_in()",
                self.names.get(from.0).map(String::as_str).unwrap_or("ext"),
                self.names.get(dst.0).map(String::as_str).unwrap_or("?"),
            ),
        };
        match link_transmit(link, &mut self.rng, now, msg) {
            LinkOutcome::Lost => false,
            LinkOutcome::Deliver { arrive, msg, copy } => {
                if self.owns(dst) {
                    if let Some(copy) = copy {
                        self.push(arrive, dst, EventKind::Msg { from, msg: copy });
                    }
                    self.push(arrive, dst, EventKind::Msg { from, msg });
                } else {
                    if let Some(copy) = copy {
                        self.outbox.push(Outbound::Msg {
                            arrive,
                            dst,
                            from,
                            msg: copy,
                        });
                    }
                    self.outbox.push(Outbound::Msg {
                        arrive,
                        dst,
                        from,
                        msg,
                    });
                }
                true
            }
        }
    }
}

/// Handle through which a node interacts with the engine during a
/// callback. Backed either by the single-loop core or, in sharded mode,
/// by the node's lane.
enum CtxInner<'a, M: Message> {
    Global(&'a mut Core<M>),
    Lane(&'a mut LaneCore<M>),
}

/// Handle through which a node interacts with the engine during a
/// callback.
pub struct Ctx<'a, M: Message> {
    inner: CtxInner<'a, M>,
    id: NodeId,
}

impl<'a, M: Message> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        match &self.inner {
            CtxInner::Global(c) => c.now,
            CtxInner::Lane(l) => l.now,
        }
    }

    /// The id of the node being called.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Send a message over the configured link to `dst`. Returns `false`
    /// if the link's fault injector dropped the message.
    ///
    /// Panics if no link `self -> dst` was configured; this catches
    /// wiring bugs early.
    pub fn send(&mut self, dst: NodeId, msg: M) -> bool {
        let id = self.id;
        match &mut self.inner {
            CtxInner::Global(core) => {
                if !core.alive[dst.0] {
                    // Messages to a crashed node vanish, as frames to a
                    // dead server would — but the link records the loss.
                    if let Some(link) = core.links.get_mut(&(id, dst)) {
                        link.dropped += 1;
                    }
                    return false;
                }
                core.send_via_link(id, dst, msg)
            }
            CtxInner::Lane(lane) => {
                if !lane.node_alive(dst) {
                    if let Some(link) = lane.links.get_mut(&(id, dst)) {
                        link.dropped += 1;
                    }
                    return false;
                }
                let now = lane.now;
                lane.send_via_link_at(id, dst, now, msg)
            }
        }
    }

    /// Send over the configured link to `dst`, but with the departure
    /// delayed by `delay` (local processing before the NIC): the link's
    /// bandwidth, queueing, and fault injection still apply.
    pub fn send_link_in(&mut self, dst: NodeId, delay: Nanos, msg: M) -> bool {
        let id = self.id;
        match &mut self.inner {
            CtxInner::Global(core) => {
                if !core.alive[dst.0] {
                    if let Some(link) = core.links.get_mut(&(id, dst)) {
                        link.dropped += 1;
                    }
                    return false;
                }
                let depart = core.now + delay;
                core.send_via_link_at(id, dst, depart, msg)
            }
            CtxInner::Lane(lane) => {
                if !lane.node_alive(dst) {
                    if let Some(link) = lane.links.get_mut(&(id, dst)) {
                        link.dropped += 1;
                    }
                    return false;
                }
                let depart = lane.now + delay;
                lane.send_via_link_at(id, dst, depart, msg)
            }
        }
    }

    /// Deliver a message directly after `delay`, bypassing any link
    /// (models same-host shared memory or abstract control channels).
    pub fn send_in(&mut self, dst: NodeId, delay: Nanos, msg: M) {
        let id = self.id;
        match &mut self.inner {
            CtxInner::Global(core) => {
                if !core.alive[dst.0] {
                    return;
                }
                let at = core.now + delay;
                core.push(at, dst, EventKind::Msg { from: id, msg });
            }
            CtxInner::Lane(lane) => {
                if !lane.node_alive(dst) {
                    return;
                }
                let at = lane.now + delay;
                if lane.owns(dst) {
                    lane.push(at, dst, EventKind::Msg { from: id, msg });
                } else {
                    lane.outbox.push(Outbound::Msg {
                        arrive: at,
                        dst,
                        from: id,
                        msg,
                    });
                }
            }
        }
    }

    /// Schedule a timer for this node after `delay`.
    pub fn timer(&mut self, delay: Nanos, token: u64) {
        let id = self.id;
        match &mut self.inner {
            CtxInner::Global(core) => {
                let at = core.now + delay;
                core.push(at, id, EventKind::Timer { token });
            }
            CtxInner::Lane(lane) => {
                let at = lane.now + delay;
                lane.push(at, id, EventKind::Timer { token });
            }
        }
    }

    /// Schedule a timer for this node at the absolute time `at` (clamped
    /// to now if already past).
    pub fn timer_at(&mut self, at: Nanos, token: u64) {
        let id = self.id;
        match &mut self.inner {
            CtxInner::Global(core) => {
                let at = at.max(core.now);
                core.push(at, id, EventKind::Timer { token });
            }
            CtxInner::Lane(lane) => {
                let at = at.max(lane.now);
                lane.push(at, id, EventKind::Timer { token });
            }
        }
    }

    /// Crash another node: all its queued and future events are dropped
    /// until it is revived. Models a fail-stop process crash (SIGKILL).
    /// Records a `NodeKilled` trace event. In sharded mode a cross-lane
    /// kill takes effect at the next slot barrier.
    pub fn kill(&mut self, node: NodeId) {
        let id = self.id;
        match &mut self.inner {
            CtxInner::Global(core) => core.set_alive(node, id, false),
            CtxInner::Lane(lane) => {
                if lane.owns(node) {
                    lane.set_alive_local(node, id, false);
                } else {
                    lane.outbox.push(Outbound::SetAlive {
                        node,
                        actor: id,
                        alive: false,
                    });
                }
            }
        }
    }

    /// Bring a previously killed node back (e.g., a restarted process).
    /// Records a `NodeRevived` trace event. In sharded mode a cross-lane
    /// revive takes effect at the next slot barrier.
    pub fn revive(&mut self, node: NodeId) {
        let id = self.id;
        match &mut self.inner {
            CtxInner::Global(core) => core.set_alive(node, id, true),
            CtxInner::Lane(lane) => {
                if lane.owns(node) {
                    lane.set_alive_local(node, id, true);
                } else {
                    lane.outbox.push(Outbound::SetAlive {
                        node,
                        actor: id,
                        alive: true,
                    });
                }
            }
        }
    }

    /// Restart a killed node from inside the simulation (an
    /// orchestrator node re-launching a crashed process): revive it and
    /// re-run its `on_start` at the current time so it can re-establish
    /// its timer chains. The node keeps its in-memory state. Only call
    /// on dead nodes — on a live node `on_start` would fire again and
    /// double its timer chains. In sharded mode a cross-lane restart
    /// takes effect at the next slot barrier.
    pub fn restart(&mut self, node: NodeId) {
        let id = self.id;
        match &mut self.inner {
            CtxInner::Global(core) => {
                core.set_alive(node, id, true);
                let now = core.now;
                core.push(now, node, EventKind::Start);
            }
            CtxInner::Lane(lane) => {
                if lane.owns(node) {
                    lane.set_alive_local(node, id, true);
                    let now = lane.now;
                    lane.push(now, node, EventKind::Start);
                } else {
                    lane.outbox.push(Outbound::Restart { node, actor: id });
                }
            }
        }
    }

    /// Liveness of `node`. In sharded mode, cross-lane queries read the
    /// barrier snapshot (stale by at most one slot); same-lane queries
    /// are exact.
    pub fn is_alive(&self, node: NodeId) -> bool {
        match &self.inner {
            CtxInner::Global(core) => core.alive[node.0],
            CtxInner::Lane(lane) => lane.node_alive(node),
        }
    }

    /// Engine-level RNG; nodes normally hold their own forked [`SimRng`]
    /// and use this only for incidental draws. In sharded mode this is
    /// the lane's RNG stream (pre-split per lane, so draws stay
    /// shard-invariant).
    pub fn rng(&mut self) -> &mut SimRng {
        match &mut self.inner {
            CtxInner::Global(core) => &mut core.rng,
            CtxInner::Lane(lane) => &mut lane.rng,
        }
    }

    /// Record a structured trace event attributed to this node, stamped
    /// with the slot identity derived from the current time. See
    /// [`TraceEventKind`] for the per-kind payload conventions.
    pub fn trace(&mut self, kind: TraceEventKind, a: u64, b: u64) {
        let id = self.id;
        match &mut self.inner {
            CtxInner::Global(core) => {
                let now = core.now;
                core.trace.record(now, id, kind, a, b);
            }
            CtxInner::Lane(lane) => {
                let now = lane.now;
                lane.trace.record(now, id, kind, a, b);
            }
        }
    }

    /// Record a trace event carrying an explicit slot identity (for
    /// events whose slot comes from a packet header rather than the
    /// arrival time).
    pub fn trace_at_slot(&mut self, kind: TraceEventKind, slot: SlotId, a: u64, b: u64) {
        let id = self.id;
        match &mut self.inner {
            CtxInner::Global(core) => {
                let now = core.now;
                core.trace.record_at_slot(now, id, slot, kind, a, b);
            }
            CtxInner::Lane(lane) => {
                let now = lane.now;
                lane.trace.record_at_slot(now, id, slot, kind, a, b);
            }
        }
    }

    /// The engine-wide metrics registry. Scope metrics by component
    /// name so post-run exports stay navigable.
    ///
    /// Not available during sharded dispatch (the registry is global and
    /// lanes run in parallel); instrumented nodes publish through
    /// [`crate::metrics::Instrument`] snapshots after the run instead.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        match &mut self.inner {
            CtxInner::Global(core) => &mut core.metrics,
            CtxInner::Lane(_) => panic!(
                "ctx.metrics() is unavailable during sharded dispatch; \
                 publish Instrument snapshots after the run instead"
            ),
        }
    }

    /// The engine's compute worker pool (a cheap shared handle). Pure
    /// per-slot DSP work may fan out here; everything observable through
    /// this `Ctx` must still happen serially, in submission order, so
    /// worker count never changes the trace.
    pub fn worker_pool(&self) -> WorkerPool {
        match &self.inner {
            CtxInner::Global(core) => core.pool.clone(),
            CtxInner::Lane(lane) => lane.pool.clone(),
        }
    }

    /// The engine's kernel backend selection (a `Copy` config). Nodes
    /// build their DSP dispatch handle from this once per callback, so
    /// every kernel in the deployment runs the same implementation
    /// family and forced-scalar runs stay trace-identical.
    pub fn kernel_config(&self) -> KernelConfig {
        match &self.inner {
            CtxInner::Global(core) => core.kernels,
            CtxInner::Lane(lane) => lane.kernels,
        }
    }

    /// The engine's wall-clock span profiler (a cheap shared handle).
    /// Disabled by default, in which case every span call is inert —
    /// no clock reads, no allocation — so hot paths may call it
    /// unconditionally. Timing lives in a side-channel buffer, never in
    /// the deterministic trace.
    pub fn profiler(&self) -> SpanProfiler {
        match &self.inner {
            CtxInner::Global(core) => core.profiler.clone(),
            CtxInner::Lane(lane) => lane.profiler.clone(),
        }
    }
}

/// Sharded-dispatch state: the lane set plus the slot-barrier cursor.
struct Fabric<M> {
    /// `Option` so windows can move a lane into a worker job.
    lanes: Vec<Option<LaneCore<M>>>,
    lane_of: Arc<Vec<u32>>,
    /// Next absolute slot-barrier instant (multiple of the quantum).
    next_barrier: Nanos,
    /// Barrier spacing; [`crate::time::SLOT_DURATION`] by default.
    quantum: Nanos,
    /// How many parallel jobs the lane set is chunked into per window
    /// (`shards(k)`). Purely an execution knob: any value produces the
    /// same trace.
    exec_shards: usize,
}

/// The deterministic discrete-event simulation engine.
pub struct Engine<M: Message> {
    core: Core<M>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    started: bool,
    fabric: Option<Fabric<M>>,
}

impl<M: Message> Engine<M> {
    pub fn new(seed: u64) -> Engine<M> {
        Engine {
            core: Core {
                now: Nanos::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                links: HashMap::new(),
                alive: Vec::new(),
                names: Vec::new(),
                rng: SimRng::new(seed),
                trace_hash: 0xcbf2_9ce4_8422_2325,
                dispatched: 0,
                trace: TraceBuffer::default(),
                metrics: MetricsRegistry::new(),
                pool: WorkerPool::serial(),
                profiler: SpanProfiler::disabled(),
                kernels: KernelConfig::from_env(),
            },
            nodes: Vec::new(),
            started: false,
            fabric: None,
        }
    }

    /// Install the compute worker pool nodes reach through
    /// [`Ctx::worker_pool`]. Defaults to the inline serial pool; a
    /// deployment that wants parallel slot processing installs a shared
    /// threaded pool here before the run starts.
    pub fn set_worker_pool(&mut self, pool: WorkerPool) {
        self.core.pool = pool;
    }

    /// The engine's compute worker pool (a cheap shared handle).
    pub fn worker_pool(&self) -> WorkerPool {
        self.core.pool.clone()
    }

    /// Install the kernel backend selection nodes reach through
    /// [`Ctx::kernel_config`]. Defaults to [`KernelConfig::from_env`]
    /// (the `KERNEL_BACKEND` override if set, else runtime detection);
    /// deployments pin it explicitly through the builder.
    pub fn set_kernel_config(&mut self, kernels: KernelConfig) {
        self.core.kernels = kernels;
    }

    /// The engine's kernel backend selection.
    pub fn kernel_config(&self) -> KernelConfig {
        self.core.kernels
    }

    /// Install a wall-clock span profiler nodes reach through
    /// [`Ctx::profiler`]. Defaults to a disabled (inert) profiler;
    /// enabling one only adds side-channel timing — the deterministic
    /// trace, its hash, and the metrics registry are untouched unless
    /// [`SpanProfiler::publish`] is called explicitly after the run.
    pub fn set_profiler(&mut self, profiler: SpanProfiler) {
        self.core.profiler = profiler;
    }

    /// The engine's span profiler handle (clones share state).
    pub fn profiler(&self) -> SpanProfiler {
        self.core.profiler.clone()
    }

    /// Register a node; the returned id is stable for the engine's life.
    pub fn add_node(&mut self, name: &str, node: Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        self.core.alive.push(true);
        self.core.names.push(name.to_string());
        id
    }

    /// Create a unidirectional link `from -> to`.
    pub fn connect(&mut self, from: NodeId, to: NodeId, params: LinkParams) {
        let link = Link {
            params,
            busy_until: Nanos::ZERO,
            sent: 0,
            dropped: 0,
            corrupted: 0,
            duplicated: 0,
            bytes: 0,
        };
        if let Some(fabric) = self.fabric.as_mut() {
            let l = fabric.lane_of[from.0] as usize;
            fabric.lanes[l]
                .as_mut()
                .expect("lane in place")
                .links
                .insert((from, to), link);
            return;
        }
        self.core.links.insert((from, to), link);
    }

    /// Create links in both directions with identical parameters.
    pub fn connect_duplex(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.connect(a, b, params.clone());
        self.connect(b, a, params);
    }

    /// The link `from -> to`, wherever it lives (the global table, or
    /// the owning lane's table in sharded mode).
    fn link(&self, from: NodeId, to: NodeId) -> Option<&Link> {
        match &self.fabric {
            None => self.core.links.get(&(from, to)),
            Some(fabric) => {
                let l = *fabric.lane_of.get(from.0)? as usize;
                fabric.lanes[l].as_ref()?.links.get(&(from, to))
            }
        }
    }

    fn link_mut(&mut self, from: NodeId, to: NodeId) -> Option<&mut Link> {
        match &mut self.fabric {
            None => self.core.links.get_mut(&(from, to)),
            Some(fabric) => {
                let l = *fabric.lane_of.get(from.0)? as usize;
                fabric.lanes[l].as_mut()?.links.get_mut(&(from, to))
            }
        }
    }

    /// Replace the parameters of an existing link (e.g., to degrade it
    /// mid-experiment). Panics if the link does not exist.
    pub fn reconfigure_link(&mut self, from: NodeId, to: NodeId, params: LinkParams) {
        let link = self
            .link_mut(from, to)
            .expect("reconfigure_link: no such link");
        link.params = params;
    }

    pub fn link_stats(&self, from: NodeId, to: NodeId) -> Option<LinkStats> {
        self.link(from, to).map(|l| LinkStats {
            sent: l.sent,
            dropped: l.dropped,
            corrupted: l.corrupted,
            duplicated: l.duplicated,
            bytes: l.bytes,
        })
    }

    /// Aggregate counters across every link in the engine (all lanes in
    /// sharded mode) — the fabric-wide byte/drop accounting the scale
    /// benches report per cell.
    pub fn total_link_stats(&self) -> LinkStats {
        let mut total = LinkStats::default();
        let mut add = |l: &Link| {
            total.sent += l.sent;
            total.dropped += l.dropped;
            total.corrupted += l.corrupted;
            total.duplicated += l.duplicated;
            total.bytes += l.bytes;
        };
        match &self.fabric {
            None => self.core.links.values().for_each(&mut add),
            Some(fabric) => {
                for lane in fabric.lanes.iter().flatten() {
                    lane.links.values().for_each(&mut add);
                }
            }
        }
        total
    }

    /// The current parameters of a link, e.g. to save them before a
    /// chaos fault degrades the link and restore them afterwards.
    pub fn link_params(&self, from: NodeId, to: NodeId) -> Option<LinkParams> {
        self.link(from, to).map(|l| l.params.clone())
    }

    /// Inject a message from outside the simulation.
    pub fn post(&mut self, at: Nanos, dst: NodeId, msg: M) {
        let at = at.max(self.core.now);
        let kind = EventKind::Msg {
            from: NodeId::EXTERNAL,
            msg,
        };
        if let Some(fabric) = self.fabric.as_mut() {
            let l = fabric.lane_of.get(dst.0).copied().unwrap_or(0) as usize;
            fabric.lanes[l]
                .as_mut()
                .expect("lane in place")
                .push(at, dst, kind);
            return;
        }
        self.core.push(at, dst, kind);
    }

    /// Kill a node from outside the simulation (the experiment script's
    /// `SIGKILL`). Records a `NodeKilled` trace event attributed to
    /// [`NodeId::EXTERNAL`].
    pub fn kill(&mut self, node: NodeId) {
        if self.fabric.is_some() {
            self.set_alive_sharded(node, NodeId::EXTERNAL, false);
            return;
        }
        self.core.set_alive(node, NodeId::EXTERNAL, false);
    }

    pub fn revive(&mut self, node: NodeId) {
        if self.fabric.is_some() {
            self.set_alive_sharded(node, NodeId::EXTERNAL, true);
            return;
        }
        self.core.set_alive(node, NodeId::EXTERNAL, true);
    }

    /// Restart a killed node: revive it and re-run its `on_start` at the
    /// current time so it can re-establish its timer chains (timers
    /// scheduled before the kill were dropped while it was dead). The
    /// node keeps its in-memory state, modeling a process restart that
    /// reloads the same configuration. No-op scheduling-wise if the node
    /// is already alive (but `on_start` still fires, so only call this on
    /// dead nodes).
    pub fn restart(&mut self, node: NodeId) {
        if self.fabric.is_some() {
            self.set_alive_sharded(node, NodeId::EXTERNAL, true);
            let now = self.core.now;
            let fabric = self.fabric.as_mut().expect("fabric");
            let l = fabric.lane_of[node.0] as usize;
            fabric.lanes[l]
                .as_mut()
                .expect("lane in place")
                .push(now, node, EventKind::Start);
            return;
        }
        self.core.set_alive(node, NodeId::EXTERNAL, true);
        let now = self.core.now;
        self.core.push(now, node, EventKind::Start);
    }

    /// Engine-level liveness change in sharded mode: updates the owning
    /// lane, records the transition in the global trace, and refreshes
    /// the fleet-wide snapshot so the next window observes it.
    fn set_alive_sharded(&mut self, node: NodeId, actor: NodeId, alive: bool) {
        let now = self.core.now;
        let changed = {
            let fabric = self.fabric.as_mut().expect("fabric");
            let l = fabric.lane_of[node.0] as usize;
            let lane = fabric.lanes[l].as_mut().expect("lane in place");
            let slot = &mut lane.alive[node.0];
            assert!(*slot != MEMBER_NONE, "not a lane member");
            let next = if alive { MEMBER_ALIVE } else { MEMBER_DEAD };
            if *slot == next {
                false
            } else {
                *slot = next;
                true
            }
        };
        if changed {
            let kind = if alive {
                TraceEventKind::NodeRevived
            } else {
                TraceEventKind::NodeKilled
            };
            self.core.trace.record(now, actor, kind, node.0 as u64, 0);
            self.refresh_alive_view();
        }
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        if let Some(fabric) = &self.fabric {
            let l = fabric.lane_of[node.0] as usize;
            let lane = fabric.lanes[l].as_ref().expect("lane in place");
            return lane.alive.get(node.0).copied().unwrap_or(MEMBER_NONE) == MEMBER_ALIVE;
        }
        self.core.alive[node.0]
    }

    pub fn now(&self) -> Nanos {
        self.core.now
    }

    /// Number of dispatched events so far.
    pub fn dispatched(&self) -> u64 {
        let lanes: u64 = self
            .fabric
            .iter()
            .flat_map(|f| f.lanes.iter().flatten())
            .map(|l| l.dispatched)
            .sum();
        self.core.dispatched + lanes
    }

    /// Per-lane dispatched-event counts, in lane order. Empty when the
    /// engine is not sharded. A load-balance diagnostic: lane 0 is the
    /// spine domain, lanes 1..=g the leaf groups, and parallel speedup
    /// is bounded by the heaviest lane's share.
    pub fn lane_loads(&self) -> Vec<u64> {
        self.fabric
            .iter()
            .flat_map(|f| f.lanes.iter().flatten())
            .map(|l| l.dispatched)
            .collect()
    }

    /// Per-lane cumulative window execution time in wall-clock
    /// nanoseconds, in lane order (empty when not sharded). Divide by
    /// the simulated slot count for the per-shard per-slot cost: a
    /// deployment holds real time on parallel hardware exactly when
    /// every lane's per-slot cost stays under the slot duration.
    pub fn lane_busy_ns(&self) -> Vec<u64> {
        self.fabric
            .iter()
            .flat_map(|f| f.lanes.iter().flatten())
            .map(|l| l.busy_ns)
            .collect()
    }

    /// FNV-style hash over the dispatched event stream; equal seeds and
    /// programs produce equal hashes (the determinism regression test).
    /// In sharded mode, the per-lane stream hashes are folded together
    /// in lane order — still shard- and worker-count invariant.
    pub fn trace_hash(&self) -> u64 {
        let mut h = self.core.trace_hash;
        if let Some(fabric) = &self.fabric {
            for lane in fabric.lanes.iter().flatten() {
                h ^= lane.trace_hash;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// The structured event trace recorded so far (see [`crate::trace`]).
    pub fn event_trace(&self) -> &TraceBuffer {
        &self.core.trace
    }

    /// Mutable trace access: resize the ring, clear between phases, or
    /// record harness-level events.
    pub fn event_trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.core.trace
    }

    /// The engine-wide metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.core.metrics
    }

    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.core.metrics
    }

    /// Copy every link's counters into the metrics registry, one scope
    /// per link (`link:<from>-><to>`), with `sent`/`dropped`/
    /// `corrupted`/`bytes` counters. Idempotent: counters are set, not
    /// accumulated, so it can be called repeatedly (e.g. once per
    /// snapshot). Iteration is sorted by node id for determinism.
    pub fn publish_link_metrics(&mut self) {
        let names = &self.core.names;
        let metrics = &mut self.core.metrics;
        let name = |id: NodeId| -> &str {
            names
                .get(id.0)
                .map(String::as_str)
                .unwrap_or(if id == NodeId::EXTERNAL { "ext" } else { "?" })
        };
        // Gather every link, wherever it lives (global table, or the
        // lanes in sharded mode), then emit in sorted key order.
        let mut entries: Vec<((NodeId, NodeId), &Link)> = match &self.fabric {
            None => self.core.links.iter().map(|(k, l)| (*k, l)).collect(),
            Some(fabric) => fabric
                .lanes
                .iter()
                .flatten()
                .flat_map(|lane| lane.links.iter().map(|(k, l)| (*k, l)))
                .collect(),
        };
        entries.sort_by_key(|(k, _)| *k);
        for ((from, to), link) in entries {
            let scope = format!("link:{}->{}", name(from), name(to));
            metrics.set_counter(&scope, "sent", link.sent);
            metrics.set_counter(&scope, "dropped", link.dropped);
            metrics.set_counter(&scope, "corrupted", link.corrupted);
            metrics.set_counter(&scope, "duplicated", link.duplicated);
            metrics.set_counter(&scope, "bytes", link.bytes);
        }
    }

    pub fn node_name(&self, id: NodeId) -> &str {
        &self.core.names[id.0]
    }

    /// All node names, indexed by `NodeId` — the argument the trace
    /// exporters take to label threads/scopes.
    pub fn node_names(&self) -> &[String] {
        &self.core.names
    }

    /// Immutable access to a node, downcast to its concrete type.
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        let node = self.nodes[id.0].as_deref()?;
        (node as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable access to a node, downcast to its concrete type. Intended
    /// for experiment setup and post-run inspection, not for use while
    /// the engine is dispatching.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let node = self.nodes[id.0].as_deref_mut()?;
        (node as &mut dyn Any).downcast_mut::<T>()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        if self.fabric.is_some() {
            // Sharded start is serial, in node id order, through each
            // node's lane ctx; outboxes drain after every callback so
            // startup semantics match the single-loop path exactly.
            for i in 0..self.nodes.len() {
                let lane_idx = {
                    let fabric = self.fabric.as_ref().expect("fabric");
                    fabric.lane_of[i] as usize
                };
                let mut node = self.nodes[i].take().expect("node missing at start");
                {
                    let fabric = self.fabric.as_mut().expect("fabric");
                    let lane = fabric.lanes[lane_idx].as_mut().expect("lane in place");
                    let mut ctx = Ctx {
                        inner: CtxInner::Lane(lane),
                        id: NodeId(i),
                    };
                    node.on_start(&mut ctx);
                }
                self.nodes[i] = Some(node);
                self.drain_outbox_of(lane_idx, Nanos::ZERO);
            }
            self.refresh_alive_view();
            return;
        }
        for i in 0..self.nodes.len() {
            let mut node = self.nodes[i].take().expect("node missing at start");
            {
                let mut ctx = Ctx {
                    inner: CtxInner::Global(&mut self.core),
                    id: NodeId(i),
                };
                node.on_start(&mut ctx);
            }
            self.nodes[i] = Some(node);
        }
    }

    /// Run until the queue is empty or simulated time reaches `until`.
    /// Afterwards `now() == until` (unless the queue emptied first, in
    /// which case `now()` still advances to `until`).
    pub fn run_until(&mut self, until: Nanos) {
        if self.fabric.is_some() {
            self.run_until_sharded(until);
            return;
        }
        self.start_if_needed();
        loop {
            let at = match self.core.queue.peek() {
                Some(Reverse(ev)) if ev.at <= until => ev.at,
                _ => break,
            };
            let Reverse(ev) = self.core.queue.pop().expect("peeked event vanished");
            debug_assert!(at >= self.core.now, "time went backwards");
            self.core.now = at;
            let dst = ev.dst;
            if dst.0 >= self.nodes.len() || !self.core.alive[dst.0] {
                continue;
            }
            // Trace hash: mixes (time, dst, kind) for determinism checks.
            let kind_tag: u64 = match &ev.kind {
                EventKind::Msg { .. } => 1,
                EventKind::Timer { .. } => 2,
                EventKind::Start => 3,
            };
            let mut h = self.core.trace_hash;
            for v in [at.0, dst.0 as u64, kind_tag] {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            self.core.trace_hash = h;
            self.core.dispatched += 1;

            let mut node = self.nodes[dst.0].take().expect("node missing");
            {
                let mut ctx = Ctx {
                    inner: CtxInner::Global(&mut self.core),
                    id: dst,
                };
                match ev.kind {
                    EventKind::Msg { from, msg } => node.on_msg(&mut ctx, from, msg),
                    EventKind::Timer { token } => node.on_timer(&mut ctx, token),
                    EventKind::Start => node.on_start(&mut ctx),
                }
            }
            self.nodes[dst.0] = Some(node);
        }
        self.core.now = self.core.now.max(until);
    }

    /// Run for an additional duration of simulated time.
    pub fn run_for(&mut self, d: Nanos) {
        let until = self.core.now + d;
        self.run_until(until);
    }

    // ---- sharded dispatch -------------------------------------------------

    /// Partition the node space into parallel dispatch lanes (cell-group
    /// shards). `lane_of[i]` is node `i`'s lane; lane 0 is conventionally
    /// the spine domain (core network, recovery orchestrator, spare
    /// pool). Must be called after every node and link is registered and
    /// before the first run.
    ///
    /// Lanes advance independently between slot barriers (every
    /// [`crate::time::SLOT_DURATION`]); cross-lane messages and liveness
    /// changes are staged on per-lane outboxes and applied serially at
    /// the barrier, with delivery times quantized up to the barrier
    /// instant. Because each lane owns its own event queue, RNG stream
    /// (pre-split per lane), links, and trace staging buffer, the result
    /// is byte-identical for every `set_exec_shards` value and every
    /// worker count.
    pub fn enable_shards(&mut self, lane_of: Vec<u32>, n_lanes: usize) {
        assert!(
            !self.started,
            "enable_shards must be called before the first run"
        );
        assert!(self.fabric.is_none(), "enable_shards called twice");
        assert_eq!(
            lane_of.len(),
            self.nodes.len(),
            "lane_of must cover every node"
        );
        assert!(n_lanes >= 1, "need at least one lane");
        assert!(
            lane_of.iter().all(|&l| (l as usize) < n_lanes),
            "lane index out of range"
        );
        let lane_of = Arc::new(lane_of);
        let n_nodes = self.nodes.len();
        let names = Arc::new(self.core.names.clone());
        let mut lanes: Vec<LaneCore<M>> = (0..n_lanes)
            .map(|i| LaneCore {
                now: self.core.now,
                seq: self.core.seq,
                queue: BinaryHeap::new(),
                links: HashMap::new(),
                alive: vec![MEMBER_NONE; n_nodes],
                alive_view: Arc::new(Vec::new()),
                local: vec![NOT_LOCAL; n_nodes],
                members: Vec::new(),
                names: Arc::clone(&names),
                rng: self.core.rng.split(i as u64),
                trace_hash: 0xcbf2_9ce4_8422_2325,
                dispatched: 0,
                busy_ns: 0,
                trace: self.core.trace.fork_staging(),
                outbox: Vec::new(),
                pool: self.core.pool.clone(),
                profiler: self.core.profiler.clone(),
                kernels: self.core.kernels,
            })
            .collect();
        for (i, &l) in lane_of.iter().enumerate() {
            let lane = &mut lanes[l as usize];
            lane.local[i] = lane.members.len() as u32;
            lane.members.push(i);
            lane.alive[i] = if self.core.alive[i] {
                MEMBER_ALIVE
            } else {
                MEMBER_DEAD
            };
        }
        // A link belongs to its sender's lane: the sender's clock and
        // RNG run the link model, so fault draws stay shard-invariant.
        for (key, link) in self.core.links.drain() {
            let l = lane_of[key.0 .0] as usize;
            lanes[l].links.insert(key, link);
        }
        // Pending events go to the destination's lane, keeping their
        // original (at, seq) so relative order survives the handoff.
        for Reverse(ev) in std::mem::take(&mut self.core.queue).into_iter() {
            let l = lane_of.get(ev.dst.0).copied().unwrap_or(0) as usize;
            lanes[l].queue.push(Reverse(ev));
        }
        let quantum = crate::time::SLOT_DURATION;
        let next_barrier = Nanos((self.core.now.0 / quantum.0 + 1) * quantum.0);
        self.fabric = Some(Fabric {
            lanes: lanes.into_iter().map(Some).collect(),
            lane_of,
            next_barrier,
            quantum,
            exec_shards: n_lanes,
        });
        self.refresh_alive_view();
    }

    /// How many parallel jobs the lane set is chunked into per window.
    /// Purely an execution knob — any value yields the same trace. No-op
    /// unless sharding is enabled.
    pub fn set_exec_shards(&mut self, k: usize) {
        if let Some(fabric) = self.fabric.as_mut() {
            fabric.exec_shards = k.max(1);
        }
    }

    /// True when [`Engine::enable_shards`] has installed dispatch lanes.
    pub fn is_sharded(&self) -> bool {
        self.fabric.is_some()
    }

    fn run_until_sharded(&mut self, until: Nanos) {
        self.start_if_needed();
        loop {
            let (barrier, quantum) = {
                let fabric = self.fabric.as_ref().expect("fabric");
                (fabric.next_barrier, fabric.quantum)
            };
            if barrier > until {
                self.advance_lanes_to(until);
                self.merge_lane_traces();
                break;
            }
            self.advance_lanes_to(barrier);
            self.barrier_sync(barrier);
            self.fabric.as_mut().expect("fabric").next_barrier = barrier + quantum;
            // Early exit once the whole fabric is quiescent: no queued
            // events, no staged cross-lane traffic.
            let idle = {
                let fabric = self.fabric.as_ref().expect("fabric");
                fabric
                    .lanes
                    .iter()
                    .flatten()
                    .all(|l| l.queue.is_empty() && l.outbox.is_empty())
            };
            if idle {
                self.advance_lanes_to(until);
                break;
            }
        }
        self.core.now = self.core.now.max(until);
        if let Some(fabric) = self.fabric.as_mut() {
            for lane in fabric.lanes.iter_mut().flatten() {
                lane.now = lane.now.max(until);
            }
        }
    }

    /// Advance every lane to `target`, chunked into `exec_shards`
    /// parallel jobs on the worker pool. Each job owns its lanes' state
    /// and node boxes for the duration of the window, so no
    /// synchronization happens inside a window.
    fn advance_lanes_to(&mut self, target: Nanos) {
        let n_lanes = self.fabric.as_ref().expect("fabric").lanes.len();
        let shards = self
            .fabric
            .as_ref()
            .expect("fabric")
            .exec_shards
            .clamp(1, n_lanes);
        let mut bundles: Vec<LaneBundle<M>> = Vec::with_capacity(n_lanes);
        {
            let fabric = self.fabric.as_mut().expect("fabric");
            for idx in 0..n_lanes {
                let lane = fabric.lanes[idx].take().expect("lane in place");
                let mut nodes: Vec<Option<Box<dyn Node<M>>>> =
                    Vec::with_capacity(lane.members.len());
                for &m in &lane.members {
                    nodes.push(Some(self.nodes[m].take().expect("node missing")));
                }
                bundles.push(LaneBundle { idx, lane, nodes });
            }
        }
        // Contiguous, near-even chunks; chunk boundaries cannot affect
        // the result because lane windows are fully independent.
        let base = n_lanes / shards;
        let extra = n_lanes % shards;
        let mut jobs: Vec<Box<dyn FnOnce() -> Vec<LaneBundle<M>> + Send>> =
            Vec::with_capacity(shards);
        let mut rest = bundles;
        for c in 0..shards {
            let take = base + usize::from(c < extra);
            let tail = rest.split_off(take.min(rest.len()));
            let mut chunk = rest;
            rest = tail;
            jobs.push(Box::new(move || {
                for b in &mut chunk {
                    run_lane_window(&mut b.lane, &mut b.nodes, target);
                }
                chunk
            }));
        }
        let done = self.core.pool.run(jobs);
        let fabric = self.fabric.as_mut().expect("fabric");
        for bundle in done.into_iter().flatten() {
            let LaneBundle {
                idx,
                lane,
                mut nodes,
            } = bundle;
            for (slot, &m) in lane.members.iter().enumerate() {
                self.nodes[m] = Some(nodes[slot].take().expect("node returned"));
            }
            fabric.lanes[idx] = Some(lane);
        }
    }

    /// Serial synchronization at a slot barrier: merge staged traces in
    /// lane order, drain every outbox (lane order = deterministic), and
    /// refresh the fleet-wide liveness snapshot.
    fn barrier_sync(&mut self, barrier: Nanos) {
        self.merge_lane_traces();
        let n_lanes = self.fabric.as_ref().expect("fabric").lanes.len();
        for idx in 0..n_lanes {
            self.drain_outbox_of(idx, barrier);
        }
        self.refresh_alive_view();
        self.core.now = barrier;
    }

    /// Apply one lane's staged cross-lane effects. `floor` is the
    /// barrier instant: deliveries quantize up to it, and liveness
    /// transitions are stamped with it.
    fn drain_outbox_of(&mut self, lane_idx: usize, floor: Nanos) {
        let ops = {
            let fabric = self.fabric.as_mut().expect("fabric");
            std::mem::take(
                &mut fabric.lanes[lane_idx]
                    .as_mut()
                    .expect("lane in place")
                    .outbox,
            )
        };
        for op in ops {
            match op {
                Outbound::Msg {
                    arrive,
                    dst,
                    from,
                    msg,
                } => {
                    let at = arrive.max(floor);
                    let fabric = self.fabric.as_mut().expect("fabric");
                    let l = fabric.lane_of.get(dst.0).copied().unwrap_or(0) as usize;
                    fabric.lanes[l].as_mut().expect("lane in place").push(
                        at,
                        dst,
                        EventKind::Msg { from, msg },
                    );
                }
                Outbound::SetAlive { node, actor, alive } => {
                    self.apply_remote_alive(node, actor, alive, floor);
                }
                Outbound::Restart { node, actor } => {
                    self.apply_remote_alive(node, actor, true, floor);
                    let fabric = self.fabric.as_mut().expect("fabric");
                    let l = fabric.lane_of[node.0] as usize;
                    fabric.lanes[l].as_mut().expect("lane in place").push(
                        floor,
                        node,
                        EventKind::Start,
                    );
                }
            }
        }
    }

    fn apply_remote_alive(&mut self, node: NodeId, actor: NodeId, alive: bool, at: Nanos) {
        let changed = {
            let fabric = self.fabric.as_mut().expect("fabric");
            let l = fabric.lane_of[node.0] as usize;
            let lane = fabric.lanes[l].as_mut().expect("lane in place");
            let slot = &mut lane.alive[node.0];
            assert!(*slot != MEMBER_NONE, "not a lane member");
            let next = if alive { MEMBER_ALIVE } else { MEMBER_DEAD };
            if *slot == next {
                false
            } else {
                *slot = next;
                true
            }
        };
        if changed {
            let kind = if alive {
                TraceEventKind::NodeRevived
            } else {
                TraceEventKind::NodeKilled
            };
            self.core.trace.record(at, actor, kind, node.0 as u64, 0);
        }
    }

    /// Rebuild the fleet-wide liveness snapshot every lane reads for
    /// cross-lane queries during the next window.
    fn refresh_alive_view(&mut self) {
        let fabric = self.fabric.as_mut().expect("fabric");
        let mut view = vec![false; self.nodes.len()];
        for lane in fabric.lanes.iter().flatten() {
            for (id, &state) in lane.alive.iter().enumerate() {
                if state != MEMBER_NONE {
                    view[id] = state == MEMBER_ALIVE;
                }
            }
        }
        let view = Arc::new(view);
        for lane in fabric.lanes.iter_mut().flatten() {
            lane.alive_view = Arc::clone(&view);
        }
    }

    /// Move every lane's staged trace events into the global buffer,
    /// time-sorted (stable, so lane order breaks ties — deterministic
    /// for every shard and worker count).
    fn merge_lane_traces(&mut self) {
        let fabric = self.fabric.as_mut().expect("fabric");
        let mut staged: Vec<crate::trace::TraceEvent> = Vec::new();
        for lane in fabric.lanes.iter_mut().flatten() {
            staged.append(&mut lane.trace.drain_events());
            lane.trace.sync_filter_from(&self.core.trace);
        }
        staged.sort_by_key(|ev| ev.at);
        for ev in staged {
            self.core.trace.append_event(ev);
        }
    }
}

#[cfg(feature = "dispatch-histogram")]
pub static DISPATCH_HISTOGRAM: std::sync::Mutex<std::collections::BTreeMap<String, u64>> =
    std::sync::Mutex::new(std::collections::BTreeMap::new());

/// One lane's movable window state: the lane core plus its member nodes
/// (indexed by the lane's `local` map).
struct LaneBundle<M: Message> {
    idx: usize,
    lane: LaneCore<M>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
}

/// Advance a single lane to `until`: the same pop/dispatch loop as the
/// single-loop engine, against lane-local state only. Runs inside a
/// worker job; everything it touches is owned by the job.
fn run_lane_window<M: Message>(
    lane: &mut LaneCore<M>,
    nodes: &mut [Option<Box<dyn Node<M>>>],
    until: Nanos,
) {
    let window_t0 = std::time::Instant::now();
    loop {
        let at = match lane.queue.peek() {
            Some(Reverse(ev)) if ev.at <= until => ev.at,
            _ => break,
        };
        let Reverse(ev) = lane.queue.pop().expect("peeked event vanished");
        debug_assert!(at >= lane.now, "time went backwards");
        lane.now = at;
        let dst = ev.dst;
        let slot = match lane.local.get(dst.0).copied() {
            Some(s) if s != NOT_LOCAL => s as usize,
            _ => continue,
        };
        if lane.alive.get(dst.0).copied().unwrap_or(MEMBER_NONE) != MEMBER_ALIVE {
            continue;
        }
        let kind_tag: u64 = match &ev.kind {
            EventKind::Msg { .. } => 1,
            EventKind::Timer { .. } => 2,
            EventKind::Start => 3,
        };
        let mut h = lane.trace_hash;
        for v in [at.0, dst.0 as u64, kind_tag] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        lane.trace_hash = h;
        lane.dispatched += 1;
        #[cfg(feature = "dispatch-histogram")]
        {
            let name = lane.names.get(dst.0).cloned().unwrap_or_default();
            let pfx: String = name.chars().take_while(|c| !c.is_ascii_digit()).collect();
            let tag = match &ev.kind {
                EventKind::Msg { .. } => "msg",
                EventKind::Timer { .. } => "timer",
                EventKind::Start => "start",
            };
            *DISPATCH_HISTOGRAM
                .lock()
                .unwrap()
                .entry(format!("{pfx}/{tag}"))
                .or_insert(0u64) += 1;
        }

        let mut node = nodes[slot].take().expect("node missing");
        {
            let mut ctx = Ctx {
                inner: CtxInner::Lane(lane),
                id: dst,
            };
            match ev.kind {
                EventKind::Msg { from, msg } => node.on_msg(&mut ctx, from, msg),
                EventKind::Timer { token } => node.on_timer(&mut ctx, token),
                EventKind::Start => node.on_start(&mut ctx),
            }
        }
        nodes[slot] = Some(node);
    }
    lane.now = lane.now.max(until);
    lane.busy_ns += window_t0.elapsed().as_nanos() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct TestMsg(u64, usize);

    impl Message for TestMsg {
        fn wire_size(&self) -> usize {
            self.1
        }

        fn duplicate(&self) -> Option<Self> {
            Some(TestMsg(self.0, self.1))
        }
    }

    #[derive(Default)]
    struct Recorder {
        got: Vec<(u64, Nanos)>,
        timers: Vec<(u64, Nanos)>,
    }

    impl Node<TestMsg> for Recorder {
        fn on_msg(&mut self, ctx: &mut Ctx<'_, TestMsg>, _from: NodeId, msg: TestMsg) {
            self.got.push((msg.0, ctx.now()));
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, token: u64) {
            self.timers.push((token, ctx.now()));
        }
    }

    struct Pinger {
        peer: NodeId,
        sent: u64,
    }

    impl Node<TestMsg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.timer(Nanos(100), 0);
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _token: u64) {
            ctx.send(self.peer, TestMsg(self.sent, 100));
            self.sent += 1;
            if self.sent < 5 {
                ctx.timer(Nanos(100), 0);
            }
        }

        fn on_msg(&mut self, _ctx: &mut Ctx<'_, TestMsg>, _from: NodeId, _msg: TestMsg) {}
    }

    fn engine() -> Engine<TestMsg> {
        Engine::new(1)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut e = engine();
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.post(Nanos(300), r, TestMsg(3, 0));
        e.post(Nanos(100), r, TestMsg(1, 0));
        e.post(Nanos(200), r, TestMsg(2, 0));
        e.run_until(Nanos(1000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(
            rec.got,
            vec![(1, Nanos(100)), (2, Nanos(200)), (3, Nanos(300)),]
        );
    }

    #[test]
    fn simultaneous_events_fifo_by_insertion() {
        let mut e = engine();
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.post(Nanos(100), r, TestMsg(1, 0));
        e.post(Nanos(100), r, TestMsg(2, 0));
        e.run_until(Nanos(100));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got.iter().map(|g| g.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut e = engine();
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.post(Nanos(100), r, TestMsg(1, 0));
        e.post(Nanos(201), r, TestMsg(2, 0));
        e.run_until(Nanos(200));
        assert_eq!(e.now(), Nanos(200));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 1);
        e.run_until(Nanos(300));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 2);
    }

    #[test]
    fn link_latency_and_serialization() {
        let mut e = engine();
        let a = e.add_node(
            "a",
            Box::new(Pinger {
                peer: NodeId(1),
                sent: 0,
            }),
        );
        let r = e.add_node("r", Box::new(Recorder::default()));
        // 100 byte msg at 1 Gbps = 800 ns serialization; latency 1000 ns.
        e.connect(a, r, LinkParams::with_bandwidth(Nanos(1000), 1_000_000_000));
        e.run_until(Nanos(10_000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got.len(), 5);
        assert_eq!(rec.got[0].1, Nanos(100 + 800 + 1000));
    }

    #[test]
    fn link_fifo_queueing_backlog() {
        // Two messages sent at the same instant must serialize one after
        // the other.
        #[derive(Default)]
        struct Burst {
            peer: Option<NodeId>,
        }
        impl Node<TestMsg> for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(0), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _token: u64) {
                let peer = self.peer.unwrap();
                ctx.send(peer, TestMsg(1, 1000));
                ctx.send(peer, TestMsg(2, 1000));
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
        }
        let mut e = engine();
        let a = e.add_node("a", Box::new(Burst { peer: None }));
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.node_mut::<Burst>(a).unwrap().peer = Some(r);
        // 1000 bytes at 1 Gbps = 8000 ns each.
        e.connect(a, r, LinkParams::with_bandwidth(Nanos(0), 1_000_000_000));
        e.run_until(Nanos(100_000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got[0].1, Nanos(8_000));
        assert_eq!(rec.got[1].1, Nanos(16_000));
    }

    #[test]
    fn killed_node_receives_nothing() {
        let mut e = engine();
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.post(Nanos(100), r, TestMsg(1, 0));
        e.post(Nanos(300), r, TestMsg(2, 0));
        e.run_until(Nanos(150));
        e.kill(r);
        e.run_until(Nanos(400));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 1);
        // Revive: future events are delivered again.
        e.revive(r);
        e.post(Nanos(500), r, TestMsg(3, 0));
        e.run_until(Nanos(600));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 2);
    }

    #[test]
    fn drop_chance_one_drops_everything() {
        let mut e = engine();
        let a = e.add_node(
            "a",
            Box::new(Pinger {
                peer: NodeId(1),
                sent: 0,
            }),
        );
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.connect(a, r, LinkParams::ideal(Nanos(10)).drop_chance(1.0));
        e.run_until(Nanos(10_000));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 0);
        let stats = e.link_stats(a, r).unwrap();
        assert_eq!(stats.sent, 5);
        assert_eq!(stats.dropped, 5);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut e: Engine<TestMsg> = Engine::new(seed);
            let a = e.add_node(
                "a",
                Box::new(Pinger {
                    peer: NodeId(1),
                    sent: 0,
                }),
            );
            let r = e.add_node("r", Box::new(Recorder::default()));
            e.connect(a, r, LinkParams::ideal(Nanos(17)).drop_chance(0.3));
            e.run_until(Nanos(100_000));
            (e.trace_hash(), e.dispatched())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0);
    }

    #[test]
    fn timer_tokens_roundtrip() {
        struct T;
        impl Node<TestMsg> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(5), 42);
                ctx.timer_at(Nanos(3), 7);
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, token: u64) {
                if token == 42 {
                    ctx.send_in(NodeId(1), Nanos(1), TestMsg(token, 0));
                } else {
                    ctx.send_in(NodeId(1), Nanos(1), TestMsg(token, 0));
                }
            }
        }
        let mut e = engine();
        let _t = e.add_node("t", Box::new(T));
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.run_until(Nanos(100));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got, vec![(7, Nanos(4)), (42, Nanos(6))]);
    }

    #[test]
    fn send_link_in_applies_link_semantics() {
        struct Delayed {
            peer: NodeId,
        }
        impl Node<TestMsg> for Delayed {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(100), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _t: u64) {
                // 2000 ns of local processing before the NIC sends.
                ctx.send_link_in(self.peer, Nanos(2_000), TestMsg(1, 1000));
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
        }
        let mut e = engine();
        let a = e.add_node("a", Box::new(Delayed { peer: NodeId(1) }));
        let r = e.add_node("r", Box::new(Recorder::default()));
        // 1000 B at 1 Gbps = 8000 ns serialization, plus 500 ns latency.
        e.connect(a, r, LinkParams::with_bandwidth(Nanos(500), 1_000_000_000));
        e.run_until(Nanos(50_000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got, vec![(1, Nanos(100 + 2_000 + 8_000 + 500))]);
    }

    #[test]
    fn send_link_in_subject_to_drops() {
        struct Delayed {
            peer: NodeId,
        }
        impl Node<TestMsg> for Delayed {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _t: u64) {
                ctx.send_link_in(self.peer, Nanos(10), TestMsg(1, 10));
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
        }
        let mut e = engine();
        let a = e.add_node("a", Box::new(Delayed { peer: NodeId(1) }));
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.connect(a, r, LinkParams::ideal(Nanos(10)).drop_chance(1.0));
        e.run_until(Nanos(10_000));
        assert!(e.node::<Recorder>(r).unwrap().got.is_empty());
        assert_eq!(e.link_stats(a, r).unwrap().dropped, 1);
    }

    #[test]
    fn dup_chance_one_duplicates_everything() {
        let mut e = engine();
        let a = e.add_node(
            "a",
            Box::new(Pinger {
                peer: NodeId(1),
                sent: 0,
            }),
        );
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.connect(a, r, LinkParams::ideal(Nanos(10)).dup_chance(1.0));
        e.run_until(Nanos(10_000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got.len(), 10); // 5 sent, each doubled
                                       // Original first, copy immediately behind at the same instant.
        assert_eq!(rec.got[0], (0, Nanos(110)));
        assert_eq!(rec.got[1], (0, Nanos(110)));
        assert_eq!(e.link_stats(a, r).unwrap().duplicated, 5);
    }

    #[test]
    fn reorder_hold_lets_later_messages_overtake() {
        #[derive(Default)]
        struct Burst {
            peer: Option<NodeId>,
        }
        impl Node<TestMsg> for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(0), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _token: u64) {
                let peer = self.peer.unwrap();
                ctx.send(peer, TestMsg(1, 0));
                ctx.send(peer, TestMsg(2, 0));
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
        }
        let mut e = engine();
        let a = e.add_node("a", Box::new(Burst { peer: None }));
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.node_mut::<Burst>(a).unwrap().peer = Some(r);
        // Every message is "reordered", but the hold is constant, so the
        // pair keeps relative order; a probabilistic hold shuffles. Use
        // two sends where only the first draw selects (chance 1.0 both —
        // constant hold keeps order; assert the hold applied).
        e.connect(a, r, LinkParams::ideal(Nanos(10)).reorder(1.0, Nanos(500)));
        e.run_until(Nanos(10_000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got[0].1, Nanos(510));
        // Partial reordering: only message 1 held back, message 2 passes.
        let mut e = engine();
        let a = e.add_node("a", Box::new(Burst { peer: None }));
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.node_mut::<Burst>(a).unwrap().peer = Some(r);
        e.connect(a, r, LinkParams::ideal(Nanos(10)));
        e.run_until(Nanos(10_000));
        let baseline: Vec<u64> = e
            .node::<Recorder>(r)
            .unwrap()
            .got
            .iter()
            .map(|g| g.0)
            .collect();
        assert_eq!(baseline, vec![1, 2]);
    }

    #[test]
    fn restart_reruns_on_start() {
        struct Beater {
            beats: u64,
        }
        impl Node<TestMsg> for Beater {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(100), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _t: u64) {
                self.beats += 1;
                ctx.timer(Nanos(100), 0);
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
        }
        let mut e = engine();
        let b = e.add_node("b", Box::new(Beater { beats: 0 }));
        e.run_until(Nanos(1_000));
        let after_first = e.node::<Beater>(b).unwrap().beats;
        assert!(after_first >= 9);
        // Kill: the timer chain dies with the node.
        e.kill(b);
        e.run_until(Nanos(2_000));
        assert_eq!(e.node::<Beater>(b).unwrap().beats, after_first);
        // Plain revive does NOT resurrect the chain...
        e.revive(b);
        e.run_until(Nanos(3_000));
        assert_eq!(e.node::<Beater>(b).unwrap().beats, after_first);
        // ...but restart re-runs on_start, which re-arms it.
        e.kill(b);
        e.restart(b);
        e.run_until(Nanos(4_000));
        assert!(e.node::<Beater>(b).unwrap().beats > after_first);
    }

    #[test]
    fn reconfigure_link_applies() {
        let mut e = engine();
        let a = e.add_node(
            "a",
            Box::new(Pinger {
                peer: NodeId(1),
                sent: 0,
            }),
        );
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.connect(a, r, LinkParams::ideal(Nanos(10)));
        e.run_until(Nanos(150)); // first send at t=100 arrives t=110
        e.reconfigure_link(a, r, LinkParams::ideal(Nanos(10)).drop_chance(1.0));
        e.run_until(Nanos(10_000));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 1);
    }
}
