//! The discrete-event simulation engine.
//!
//! The engine owns a set of [`Node`]s identified by [`NodeId`], a priority
//! queue of pending events, and a table of point-to-point links.
//! Nodes exchange messages of a single application-defined type `M`
//! (an enum in the higher-level crates covering Ethernet frames, radio
//! bursts, and control messages). Links model propagation latency,
//! serialization delay at a configured bandwidth, FIFO queueing, and
//! optional fault injection.
//!
//! Event dispatch is single-threaded and deterministic: the same master
//! seed and the same sequence of API calls produce byte-identical event
//! traces (see [`Engine::trace_hash`]). Nodes may offload pure compute
//! within one callback to the engine's [`WorkerPool`]
//! ([`Ctx::worker_pool`]); because jobs carry pre-split RNG streams and
//! results merge in submission order, the trace is independent of the
//! pool's worker count.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::metrics::MetricsRegistry;
use crate::pool::WorkerPool;
use crate::profiler::SpanProfiler;
use crate::rng::SimRng;
use crate::time::{Nanos, SlotId};
use crate::trace::{TraceBuffer, TraceEventKind};

/// Identifies a node registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Sender id used for events injected from outside the simulation
    /// (test harnesses, experiment scripts).
    pub const EXTERNAL: NodeId = NodeId(usize::MAX);
}

/// Messages exchanged between nodes.
///
/// `wire_size` is the serialized size used to compute transmission delay
/// on bandwidth-limited links; messages that never cross such links may
/// keep the default. `corrupt` is invoked by the fault injector and may
/// flip bits in the payload; the default is a no-op (the message is then
/// dropped instead, which is the conservative interpretation).
pub trait Message: std::fmt::Debug + 'static {
    fn wire_size(&self) -> usize {
        0
    }

    /// Mutate the message as in-flight corruption would. Returns `true`
    /// if corruption was applied; if `false`, the link drops the message
    /// instead.
    fn corrupt(&mut self, _rng: &mut SimRng) -> bool {
        false
    }

    /// Produce a copy of this message for link-level duplication faults.
    /// Returning `None` (the default) means the message type cannot be
    /// duplicated and the link's `dup_chance` is a no-op for it; message
    /// enums typically implement this only for their wire-format variants
    /// (a switch can duplicate an Ethernet frame, not a shared-memory
    /// handle).
    fn duplicate(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// A simulation participant. Nodes react to messages and timers; all
/// side effects go through the [`Ctx`].
pub trait Node<M: Message>: Any {
    /// Called once when the simulation starts, before any event fires.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// A message from `from` has arrived.
    fn on_msg(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// A timer scheduled by this node has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}
}

/// Parameters of a unidirectional point-to-point link.
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: Nanos,
    /// Bits per second; 0 means infinite (no serialization delay).
    pub bandwidth_bps: u64,
    /// Probability of dropping each message.
    pub drop_chance: f64,
    /// Probability of corrupting each message (falls back to a drop if
    /// the message type does not implement corruption).
    pub corrupt_chance: f64,
    /// Additional uniformly distributed latency jitter in [0, jitter].
    pub jitter: Nanos,
    /// Probability of duplicating each message (only applies to message
    /// types whose [`Message::duplicate`] returns `Some`).
    pub dup_chance: f64,
    /// Probability of delaying a message by `reorder_hold`, letting
    /// later-sent messages overtake it.
    pub reorder_chance: f64,
    /// Extra delay applied to messages selected for reordering.
    pub reorder_hold: Nanos,
}

impl LinkParams {
    /// An ideal link with the given latency and no bandwidth limit.
    pub fn ideal(latency: Nanos) -> LinkParams {
        LinkParams {
            latency,
            bandwidth_bps: 0,
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            jitter: Nanos::ZERO,
            dup_chance: 0.0,
            reorder_chance: 0.0,
            reorder_hold: Nanos::ZERO,
        }
    }

    /// A link with latency and a finite bandwidth.
    pub fn with_bandwidth(latency: Nanos, bandwidth_bps: u64) -> LinkParams {
        LinkParams {
            bandwidth_bps,
            ..LinkParams::ideal(latency)
        }
    }

    pub fn drop_chance(mut self, p: f64) -> LinkParams {
        self.drop_chance = p;
        self
    }

    pub fn corrupt_chance(mut self, p: f64) -> LinkParams {
        self.corrupt_chance = p;
        self
    }

    pub fn jitter(mut self, j: Nanos) -> LinkParams {
        self.jitter = j;
        self
    }

    pub fn dup_chance(mut self, p: f64) -> LinkParams {
        self.dup_chance = p;
        self
    }

    /// With probability `p`, hold a message back by `hold` so that
    /// later-sent messages overtake it.
    pub fn reorder(mut self, p: f64, hold: Nanos) -> LinkParams {
        self.reorder_chance = p;
        self.reorder_hold = hold;
        self
    }
}

#[derive(Debug)]
struct Link {
    params: LinkParams,
    /// Time at which the link's transmitter becomes free (FIFO model).
    busy_until: Nanos,
    /// Counters for observability.
    sent: u64,
    dropped: u64,
    corrupted: u64,
    duplicated: u64,
    bytes: u64,
}

/// Per-link statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    pub sent: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub duplicated: u64,
    pub bytes: u64,
}

enum EventKind<M> {
    Msg {
        from: NodeId,
        msg: M,
    },
    Timer {
        token: u64,
    },
    /// Re-run the node's `on_start` — used by [`Engine::restart`] to model
    /// a process restart that re-establishes its timer chains.
    Start,
}

struct QueuedEvent<M> {
    at: Nanos,
    seq: u64,
    dst: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for QueuedEvent<M> {}

impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Engine internals shared with nodes through [`Ctx`].
struct Core<M> {
    now: Nanos,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent<M>>>,
    links: HashMap<(NodeId, NodeId), Link>,
    alive: Vec<bool>,
    names: Vec<String>,
    rng: SimRng,
    trace_hash: u64,
    dispatched: u64,
    trace: TraceBuffer,
    metrics: MetricsRegistry,
    pool: WorkerPool,
    profiler: SpanProfiler,
}

impl<M> Core<M> {
    /// Record a node death/revival in the event trace, only on actual
    /// state transitions so repeated kills do not pollute the timeline.
    fn set_alive(&mut self, node: NodeId, actor: NodeId, alive: bool) {
        if self.alive[node.0] == alive {
            return;
        }
        self.alive[node.0] = alive;
        let kind = if alive {
            TraceEventKind::NodeRevived
        } else {
            TraceEventKind::NodeKilled
        };
        self.trace.record(self.now, actor, kind, node.0 as u64, 0);
    }
}

impl<M: Message> Core<M> {
    fn push(&mut self, at: Nanos, dst: NodeId, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, dst, kind }));
    }

    fn send_via_link(&mut self, from: NodeId, dst: NodeId, msg: M) -> bool {
        let now = self.now;
        self.send_via_link_at(from, dst, now, msg)
    }

    /// Link transmission whose earliest departure is `depart_floor`
    /// (models local processing completing before the NIC takes over).
    fn send_via_link_at(
        &mut self,
        from: NodeId,
        dst: NodeId,
        depart_floor: Nanos,
        mut msg: M,
    ) -> bool {
        let now = depart_floor.max(self.now);
        let link = match self.links.get_mut(&(from, dst)) {
            Some(l) => l,
            None => panic!(
                "no link {} -> {}; use connect() or send_in()",
                self.names.get(from.0).map(String::as_str).unwrap_or("ext"),
                self.names.get(dst.0).map(String::as_str).unwrap_or("?"),
            ),
        };
        link.sent += 1;
        let size = msg.wire_size();
        link.bytes += size as u64;
        // Fault injection decisions draw from the engine RNG, which keeps
        // node-local RNG streams independent of link behavior.
        if link.params.drop_chance > 0.0 && self.rng.chance(link.params.drop_chance) {
            link.dropped += 1;
            return false;
        }
        if link.params.corrupt_chance > 0.0 && self.rng.chance(link.params.corrupt_chance) {
            if msg.corrupt(&mut self.rng) {
                link.corrupted += 1;
            } else {
                link.dropped += 1;
                return false;
            }
        }
        // bandwidth 0 = infinite: no serialization delay.
        let tx_time = (size as u64 * 8)
            .saturating_mul(1_000_000_000)
            .checked_div(link.params.bandwidth_bps)
            .map_or(Nanos::ZERO, Nanos);
        let depart = link.busy_until.max(now);
        let done = depart + tx_time;
        link.busy_until = done;
        let params = link.params.clone();
        let mut arrive = done + params.latency;
        if params.jitter.0 > 0 {
            arrive += Nanos(self.rng.below(params.jitter.0 + 1));
        }
        // Chaos injection: all probability draws are gated on a non-zero
        // chance so links without faults consume no RNG state (keeps
        // pre-existing seeds byte-identical).
        if params.reorder_chance > 0.0 && self.rng.chance(params.reorder_chance) {
            arrive += params.reorder_hold;
        }
        if params.dup_chance > 0.0 && self.rng.chance(params.dup_chance) {
            if let Some(copy) = msg.duplicate() {
                if let Some(link) = self.links.get_mut(&(from, dst)) {
                    link.duplicated += 1;
                }
                // The copy lands at the same instant; FIFO seq ordering
                // delivers the original first.
                self.push(arrive, dst, EventKind::Msg { from, msg: copy });
            }
        }
        self.push(arrive, dst, EventKind::Msg { from, msg });
        true
    }
}

/// Handle through which a node interacts with the engine during a
/// callback.
pub struct Ctx<'a, M: Message> {
    core: &'a mut Core<M>,
    id: NodeId,
}

impl<'a, M: Message> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.core.now
    }

    /// The id of the node being called.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Send a message over the configured link to `dst`. Returns `false`
    /// if the link's fault injector dropped the message.
    ///
    /// Panics if no link `self -> dst` was configured; this catches
    /// wiring bugs early.
    pub fn send(&mut self, dst: NodeId, msg: M) -> bool {
        if !self.core.alive[dst.0] {
            // Messages to a crashed node vanish, as frames to a dead
            // server would — but the link records the loss.
            if let Some(link) = self.core.links.get_mut(&(self.id, dst)) {
                link.dropped += 1;
            }
            return false;
        }
        self.core.send_via_link(self.id, dst, msg)
    }

    /// Send over the configured link to `dst`, but with the departure
    /// delayed by `delay` (local processing before the NIC): the link's
    /// bandwidth, queueing, and fault injection still apply.
    pub fn send_link_in(&mut self, dst: NodeId, delay: Nanos, msg: M) -> bool {
        if !self.core.alive[dst.0] {
            if let Some(link) = self.core.links.get_mut(&(self.id, dst)) {
                link.dropped += 1;
            }
            return false;
        }
        let depart = self.core.now + delay;
        self.core.send_via_link_at(self.id, dst, depart, msg)
    }

    /// Deliver a message directly after `delay`, bypassing any link
    /// (models same-host shared memory or abstract control channels).
    pub fn send_in(&mut self, dst: NodeId, delay: Nanos, msg: M) {
        if !self.core.alive[dst.0] {
            return;
        }
        let at = self.core.now + delay;
        self.core
            .push(at, dst, EventKind::Msg { from: self.id, msg });
    }

    /// Schedule a timer for this node after `delay`.
    pub fn timer(&mut self, delay: Nanos, token: u64) {
        let at = self.core.now + delay;
        self.core.push(at, self.id, EventKind::Timer { token });
    }

    /// Schedule a timer for this node at the absolute time `at` (clamped
    /// to now if already past).
    pub fn timer_at(&mut self, at: Nanos, token: u64) {
        let at = at.max(self.core.now);
        self.core.push(at, self.id, EventKind::Timer { token });
    }

    /// Crash another node: all its queued and future events are dropped
    /// until it is revived. Models a fail-stop process crash (SIGKILL).
    /// Records a `NodeKilled` trace event.
    pub fn kill(&mut self, node: NodeId) {
        self.core.set_alive(node, self.id, false);
    }

    /// Bring a previously killed node back (e.g., a restarted process).
    /// Records a `NodeRevived` trace event.
    pub fn revive(&mut self, node: NodeId) {
        self.core.set_alive(node, self.id, true);
    }

    /// Restart a killed node from inside the simulation (an
    /// orchestrator node re-launching a crashed process): revive it and
    /// re-run its `on_start` at the current time so it can re-establish
    /// its timer chains. The node keeps its in-memory state. Only call
    /// on dead nodes — on a live node `on_start` would fire again and
    /// double its timer chains.
    pub fn restart(&mut self, node: NodeId) {
        self.core.set_alive(node, self.id, true);
        let now = self.core.now;
        self.core.push(now, node, EventKind::Start);
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        self.core.alive[node.0]
    }

    /// Engine-level RNG; nodes normally hold their own forked [`SimRng`]
    /// and use this only for incidental draws.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// Record a structured trace event attributed to this node, stamped
    /// with the slot identity derived from the current time. See
    /// [`TraceEventKind`] for the per-kind payload conventions.
    pub fn trace(&mut self, kind: TraceEventKind, a: u64, b: u64) {
        let now = self.core.now;
        self.core.trace.record(now, self.id, kind, a, b);
    }

    /// Record a trace event carrying an explicit slot identity (for
    /// events whose slot comes from a packet header rather than the
    /// arrival time).
    pub fn trace_at_slot(&mut self, kind: TraceEventKind, slot: SlotId, a: u64, b: u64) {
        let now = self.core.now;
        self.core
            .trace
            .record_at_slot(now, self.id, slot, kind, a, b);
    }

    /// The engine-wide metrics registry. Scope metrics by component
    /// name so post-run exports stay navigable.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        &mut self.core.metrics
    }

    /// The engine's compute worker pool (a cheap shared handle). Pure
    /// per-slot DSP work may fan out here; everything observable through
    /// this `Ctx` must still happen serially, in submission order, so
    /// worker count never changes the trace.
    pub fn worker_pool(&self) -> WorkerPool {
        self.core.pool.clone()
    }

    /// The engine's wall-clock span profiler (a cheap shared handle).
    /// Disabled by default, in which case every span call is inert —
    /// no clock reads, no allocation — so hot paths may call it
    /// unconditionally. Timing lives in a side-channel buffer, never in
    /// the deterministic trace.
    pub fn profiler(&self) -> SpanProfiler {
        self.core.profiler.clone()
    }
}

/// The deterministic discrete-event simulation engine.
pub struct Engine<M: Message> {
    core: Core<M>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    started: bool,
}

impl<M: Message> Engine<M> {
    pub fn new(seed: u64) -> Engine<M> {
        Engine {
            core: Core {
                now: Nanos::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                links: HashMap::new(),
                alive: Vec::new(),
                names: Vec::new(),
                rng: SimRng::new(seed),
                trace_hash: 0xcbf2_9ce4_8422_2325,
                dispatched: 0,
                trace: TraceBuffer::default(),
                metrics: MetricsRegistry::new(),
                pool: WorkerPool::serial(),
                profiler: SpanProfiler::disabled(),
            },
            nodes: Vec::new(),
            started: false,
        }
    }

    /// Install the compute worker pool nodes reach through
    /// [`Ctx::worker_pool`]. Defaults to the inline serial pool; a
    /// deployment that wants parallel slot processing installs a shared
    /// threaded pool here before the run starts.
    pub fn set_worker_pool(&mut self, pool: WorkerPool) {
        self.core.pool = pool;
    }

    /// The engine's compute worker pool (a cheap shared handle).
    pub fn worker_pool(&self) -> WorkerPool {
        self.core.pool.clone()
    }

    /// Install a wall-clock span profiler nodes reach through
    /// [`Ctx::profiler`]. Defaults to a disabled (inert) profiler;
    /// enabling one only adds side-channel timing — the deterministic
    /// trace, its hash, and the metrics registry are untouched unless
    /// [`SpanProfiler::publish`] is called explicitly after the run.
    pub fn set_profiler(&mut self, profiler: SpanProfiler) {
        self.core.profiler = profiler;
    }

    /// The engine's span profiler handle (clones share state).
    pub fn profiler(&self) -> SpanProfiler {
        self.core.profiler.clone()
    }

    /// Register a node; the returned id is stable for the engine's life.
    pub fn add_node(&mut self, name: &str, node: Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        self.core.alive.push(true);
        self.core.names.push(name.to_string());
        id
    }

    /// Create a unidirectional link `from -> to`.
    pub fn connect(&mut self, from: NodeId, to: NodeId, params: LinkParams) {
        self.core.links.insert(
            (from, to),
            Link {
                params,
                busy_until: Nanos::ZERO,
                sent: 0,
                dropped: 0,
                corrupted: 0,
                duplicated: 0,
                bytes: 0,
            },
        );
    }

    /// Create links in both directions with identical parameters.
    pub fn connect_duplex(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.connect(a, b, params.clone());
        self.connect(b, a, params);
    }

    /// Replace the parameters of an existing link (e.g., to degrade it
    /// mid-experiment). Panics if the link does not exist.
    pub fn reconfigure_link(&mut self, from: NodeId, to: NodeId, params: LinkParams) {
        let link = self
            .core
            .links
            .get_mut(&(from, to))
            .expect("reconfigure_link: no such link");
        link.params = params;
    }

    pub fn link_stats(&self, from: NodeId, to: NodeId) -> Option<LinkStats> {
        self.core.links.get(&(from, to)).map(|l| LinkStats {
            sent: l.sent,
            dropped: l.dropped,
            corrupted: l.corrupted,
            duplicated: l.duplicated,
            bytes: l.bytes,
        })
    }

    /// The current parameters of a link, e.g. to save them before a
    /// chaos fault degrades the link and restore them afterwards.
    pub fn link_params(&self, from: NodeId, to: NodeId) -> Option<LinkParams> {
        self.core.links.get(&(from, to)).map(|l| l.params.clone())
    }

    /// Inject a message from outside the simulation.
    pub fn post(&mut self, at: Nanos, dst: NodeId, msg: M) {
        let at = at.max(self.core.now);
        self.core.push(
            at,
            dst,
            EventKind::Msg {
                from: NodeId::EXTERNAL,
                msg,
            },
        );
    }

    /// Kill a node from outside the simulation (the experiment script's
    /// `SIGKILL`). Records a `NodeKilled` trace event attributed to
    /// [`NodeId::EXTERNAL`].
    pub fn kill(&mut self, node: NodeId) {
        self.core.set_alive(node, NodeId::EXTERNAL, false);
    }

    pub fn revive(&mut self, node: NodeId) {
        self.core.set_alive(node, NodeId::EXTERNAL, true);
    }

    /// Restart a killed node: revive it and re-run its `on_start` at the
    /// current time so it can re-establish its timer chains (timers
    /// scheduled before the kill were dropped while it was dead). The
    /// node keeps its in-memory state, modeling a process restart that
    /// reloads the same configuration. No-op scheduling-wise if the node
    /// is already alive (but `on_start` still fires, so only call this on
    /// dead nodes).
    pub fn restart(&mut self, node: NodeId) {
        self.core.set_alive(node, NodeId::EXTERNAL, true);
        let now = self.core.now;
        self.core.push(now, node, EventKind::Start);
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        self.core.alive[node.0]
    }

    pub fn now(&self) -> Nanos {
        self.core.now
    }

    /// Number of dispatched events so far.
    pub fn dispatched(&self) -> u64 {
        self.core.dispatched
    }

    /// FNV-style hash over the dispatched event stream; equal seeds and
    /// programs produce equal hashes (the determinism regression test).
    pub fn trace_hash(&self) -> u64 {
        self.core.trace_hash
    }

    /// The structured event trace recorded so far (see [`crate::trace`]).
    pub fn event_trace(&self) -> &TraceBuffer {
        &self.core.trace
    }

    /// Mutable trace access: resize the ring, clear between phases, or
    /// record harness-level events.
    pub fn event_trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.core.trace
    }

    /// The engine-wide metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.core.metrics
    }

    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.core.metrics
    }

    /// Copy every link's counters into the metrics registry, one scope
    /// per link (`link:<from>-><to>`), with `sent`/`dropped`/
    /// `corrupted`/`bytes` counters. Idempotent: counters are set, not
    /// accumulated, so it can be called repeatedly (e.g. once per
    /// snapshot). Iteration is sorted by node id for determinism.
    pub fn publish_link_metrics(&mut self) {
        let names = &self.core.names;
        let links = &self.core.links;
        let metrics = &mut self.core.metrics;
        let name = |id: NodeId| -> &str {
            names
                .get(id.0)
                .map(String::as_str)
                .unwrap_or(if id == NodeId::EXTERNAL { "ext" } else { "?" })
        };
        let mut keys: Vec<(NodeId, NodeId)> = links.keys().copied().collect();
        keys.sort();
        for (from, to) in keys {
            let link = &links[&(from, to)];
            let scope = format!("link:{}->{}", name(from), name(to));
            metrics.set_counter(&scope, "sent", link.sent);
            metrics.set_counter(&scope, "dropped", link.dropped);
            metrics.set_counter(&scope, "corrupted", link.corrupted);
            metrics.set_counter(&scope, "duplicated", link.duplicated);
            metrics.set_counter(&scope, "bytes", link.bytes);
        }
    }

    pub fn node_name(&self, id: NodeId) -> &str {
        &self.core.names[id.0]
    }

    /// All node names, indexed by `NodeId` — the argument the trace
    /// exporters take to label threads/scopes.
    pub fn node_names(&self) -> &[String] {
        &self.core.names
    }

    /// Immutable access to a node, downcast to its concrete type.
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        let node = self.nodes[id.0].as_deref()?;
        (node as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable access to a node, downcast to its concrete type. Intended
    /// for experiment setup and post-run inspection, not for use while
    /// the engine is dispatching.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let node = self.nodes[id.0].as_deref_mut()?;
        (node as &mut dyn Any).downcast_mut::<T>()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let mut node = self.nodes[i].take().expect("node missing at start");
            {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    id: NodeId(i),
                };
                node.on_start(&mut ctx);
            }
            self.nodes[i] = Some(node);
        }
    }

    /// Run until the queue is empty or simulated time reaches `until`.
    /// Afterwards `now() == until` (unless the queue emptied first, in
    /// which case `now()` still advances to `until`).
    pub fn run_until(&mut self, until: Nanos) {
        self.start_if_needed();
        loop {
            let at = match self.core.queue.peek() {
                Some(Reverse(ev)) if ev.at <= until => ev.at,
                _ => break,
            };
            let Reverse(ev) = self.core.queue.pop().expect("peeked event vanished");
            debug_assert!(at >= self.core.now, "time went backwards");
            self.core.now = at;
            let dst = ev.dst;
            if dst.0 >= self.nodes.len() || !self.core.alive[dst.0] {
                continue;
            }
            // Trace hash: mixes (time, dst, kind) for determinism checks.
            let kind_tag: u64 = match &ev.kind {
                EventKind::Msg { .. } => 1,
                EventKind::Timer { .. } => 2,
                EventKind::Start => 3,
            };
            let mut h = self.core.trace_hash;
            for v in [at.0, dst.0 as u64, kind_tag] {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            self.core.trace_hash = h;
            self.core.dispatched += 1;

            let mut node = self.nodes[dst.0].take().expect("node missing");
            {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    id: dst,
                };
                match ev.kind {
                    EventKind::Msg { from, msg } => node.on_msg(&mut ctx, from, msg),
                    EventKind::Timer { token } => node.on_timer(&mut ctx, token),
                    EventKind::Start => node.on_start(&mut ctx),
                }
            }
            self.nodes[dst.0] = Some(node);
        }
        self.core.now = self.core.now.max(until);
    }

    /// Run for an additional duration of simulated time.
    pub fn run_for(&mut self, d: Nanos) {
        let until = self.core.now + d;
        self.run_until(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct TestMsg(u64, usize);

    impl Message for TestMsg {
        fn wire_size(&self) -> usize {
            self.1
        }

        fn duplicate(&self) -> Option<Self> {
            Some(TestMsg(self.0, self.1))
        }
    }

    #[derive(Default)]
    struct Recorder {
        got: Vec<(u64, Nanos)>,
        timers: Vec<(u64, Nanos)>,
    }

    impl Node<TestMsg> for Recorder {
        fn on_msg(&mut self, ctx: &mut Ctx<'_, TestMsg>, _from: NodeId, msg: TestMsg) {
            self.got.push((msg.0, ctx.now()));
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, token: u64) {
            self.timers.push((token, ctx.now()));
        }
    }

    struct Pinger {
        peer: NodeId,
        sent: u64,
    }

    impl Node<TestMsg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.timer(Nanos(100), 0);
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _token: u64) {
            ctx.send(self.peer, TestMsg(self.sent, 100));
            self.sent += 1;
            if self.sent < 5 {
                ctx.timer(Nanos(100), 0);
            }
        }

        fn on_msg(&mut self, _ctx: &mut Ctx<'_, TestMsg>, _from: NodeId, _msg: TestMsg) {}
    }

    fn engine() -> Engine<TestMsg> {
        Engine::new(1)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut e = engine();
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.post(Nanos(300), r, TestMsg(3, 0));
        e.post(Nanos(100), r, TestMsg(1, 0));
        e.post(Nanos(200), r, TestMsg(2, 0));
        e.run_until(Nanos(1000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(
            rec.got,
            vec![(1, Nanos(100)), (2, Nanos(200)), (3, Nanos(300)),]
        );
    }

    #[test]
    fn simultaneous_events_fifo_by_insertion() {
        let mut e = engine();
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.post(Nanos(100), r, TestMsg(1, 0));
        e.post(Nanos(100), r, TestMsg(2, 0));
        e.run_until(Nanos(100));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got.iter().map(|g| g.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut e = engine();
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.post(Nanos(100), r, TestMsg(1, 0));
        e.post(Nanos(201), r, TestMsg(2, 0));
        e.run_until(Nanos(200));
        assert_eq!(e.now(), Nanos(200));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 1);
        e.run_until(Nanos(300));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 2);
    }

    #[test]
    fn link_latency_and_serialization() {
        let mut e = engine();
        let a = e.add_node(
            "a",
            Box::new(Pinger {
                peer: NodeId(1),
                sent: 0,
            }),
        );
        let r = e.add_node("r", Box::new(Recorder::default()));
        // 100 byte msg at 1 Gbps = 800 ns serialization; latency 1000 ns.
        e.connect(a, r, LinkParams::with_bandwidth(Nanos(1000), 1_000_000_000));
        e.run_until(Nanos(10_000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got.len(), 5);
        assert_eq!(rec.got[0].1, Nanos(100 + 800 + 1000));
    }

    #[test]
    fn link_fifo_queueing_backlog() {
        // Two messages sent at the same instant must serialize one after
        // the other.
        #[derive(Default)]
        struct Burst {
            peer: Option<NodeId>,
        }
        impl Node<TestMsg> for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(0), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _token: u64) {
                let peer = self.peer.unwrap();
                ctx.send(peer, TestMsg(1, 1000));
                ctx.send(peer, TestMsg(2, 1000));
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
        }
        let mut e = engine();
        let a = e.add_node("a", Box::new(Burst { peer: None }));
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.node_mut::<Burst>(a).unwrap().peer = Some(r);
        // 1000 bytes at 1 Gbps = 8000 ns each.
        e.connect(a, r, LinkParams::with_bandwidth(Nanos(0), 1_000_000_000));
        e.run_until(Nanos(100_000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got[0].1, Nanos(8_000));
        assert_eq!(rec.got[1].1, Nanos(16_000));
    }

    #[test]
    fn killed_node_receives_nothing() {
        let mut e = engine();
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.post(Nanos(100), r, TestMsg(1, 0));
        e.post(Nanos(300), r, TestMsg(2, 0));
        e.run_until(Nanos(150));
        e.kill(r);
        e.run_until(Nanos(400));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 1);
        // Revive: future events are delivered again.
        e.revive(r);
        e.post(Nanos(500), r, TestMsg(3, 0));
        e.run_until(Nanos(600));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 2);
    }

    #[test]
    fn drop_chance_one_drops_everything() {
        let mut e = engine();
        let a = e.add_node(
            "a",
            Box::new(Pinger {
                peer: NodeId(1),
                sent: 0,
            }),
        );
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.connect(a, r, LinkParams::ideal(Nanos(10)).drop_chance(1.0));
        e.run_until(Nanos(10_000));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 0);
        let stats = e.link_stats(a, r).unwrap();
        assert_eq!(stats.sent, 5);
        assert_eq!(stats.dropped, 5);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut e: Engine<TestMsg> = Engine::new(seed);
            let a = e.add_node(
                "a",
                Box::new(Pinger {
                    peer: NodeId(1),
                    sent: 0,
                }),
            );
            let r = e.add_node("r", Box::new(Recorder::default()));
            e.connect(a, r, LinkParams::ideal(Nanos(17)).drop_chance(0.3));
            e.run_until(Nanos(100_000));
            (e.trace_hash(), e.dispatched())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0);
    }

    #[test]
    fn timer_tokens_roundtrip() {
        struct T;
        impl Node<TestMsg> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(5), 42);
                ctx.timer_at(Nanos(3), 7);
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, token: u64) {
                if token == 42 {
                    ctx.send_in(NodeId(1), Nanos(1), TestMsg(token, 0));
                } else {
                    ctx.send_in(NodeId(1), Nanos(1), TestMsg(token, 0));
                }
            }
        }
        let mut e = engine();
        let _t = e.add_node("t", Box::new(T));
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.run_until(Nanos(100));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got, vec![(7, Nanos(4)), (42, Nanos(6))]);
    }

    #[test]
    fn send_link_in_applies_link_semantics() {
        struct Delayed {
            peer: NodeId,
        }
        impl Node<TestMsg> for Delayed {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(100), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _t: u64) {
                // 2000 ns of local processing before the NIC sends.
                ctx.send_link_in(self.peer, Nanos(2_000), TestMsg(1, 1000));
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
        }
        let mut e = engine();
        let a = e.add_node("a", Box::new(Delayed { peer: NodeId(1) }));
        let r = e.add_node("r", Box::new(Recorder::default()));
        // 1000 B at 1 Gbps = 8000 ns serialization, plus 500 ns latency.
        e.connect(a, r, LinkParams::with_bandwidth(Nanos(500), 1_000_000_000));
        e.run_until(Nanos(50_000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got, vec![(1, Nanos(100 + 2_000 + 8_000 + 500))]);
    }

    #[test]
    fn send_link_in_subject_to_drops() {
        struct Delayed {
            peer: NodeId,
        }
        impl Node<TestMsg> for Delayed {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _t: u64) {
                ctx.send_link_in(self.peer, Nanos(10), TestMsg(1, 10));
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
        }
        let mut e = engine();
        let a = e.add_node("a", Box::new(Delayed { peer: NodeId(1) }));
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.connect(a, r, LinkParams::ideal(Nanos(10)).drop_chance(1.0));
        e.run_until(Nanos(10_000));
        assert!(e.node::<Recorder>(r).unwrap().got.is_empty());
        assert_eq!(e.link_stats(a, r).unwrap().dropped, 1);
    }

    #[test]
    fn dup_chance_one_duplicates_everything() {
        let mut e = engine();
        let a = e.add_node(
            "a",
            Box::new(Pinger {
                peer: NodeId(1),
                sent: 0,
            }),
        );
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.connect(a, r, LinkParams::ideal(Nanos(10)).dup_chance(1.0));
        e.run_until(Nanos(10_000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got.len(), 10); // 5 sent, each doubled
                                       // Original first, copy immediately behind at the same instant.
        assert_eq!(rec.got[0], (0, Nanos(110)));
        assert_eq!(rec.got[1], (0, Nanos(110)));
        assert_eq!(e.link_stats(a, r).unwrap().duplicated, 5);
    }

    #[test]
    fn reorder_hold_lets_later_messages_overtake() {
        #[derive(Default)]
        struct Burst {
            peer: Option<NodeId>,
        }
        impl Node<TestMsg> for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(0), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _token: u64) {
                let peer = self.peer.unwrap();
                ctx.send(peer, TestMsg(1, 0));
                ctx.send(peer, TestMsg(2, 0));
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
        }
        let mut e = engine();
        let a = e.add_node("a", Box::new(Burst { peer: None }));
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.node_mut::<Burst>(a).unwrap().peer = Some(r);
        // Every message is "reordered", but the hold is constant, so the
        // pair keeps relative order; a probabilistic hold shuffles. Use
        // two sends where only the first draw selects (chance 1.0 both —
        // constant hold keeps order; assert the hold applied).
        e.connect(a, r, LinkParams::ideal(Nanos(10)).reorder(1.0, Nanos(500)));
        e.run_until(Nanos(10_000));
        let rec = e.node::<Recorder>(r).unwrap();
        assert_eq!(rec.got[0].1, Nanos(510));
        // Partial reordering: only message 1 held back, message 2 passes.
        let mut e = engine();
        let a = e.add_node("a", Box::new(Burst { peer: None }));
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.node_mut::<Burst>(a).unwrap().peer = Some(r);
        e.connect(a, r, LinkParams::ideal(Nanos(10)));
        e.run_until(Nanos(10_000));
        let baseline: Vec<u64> = e
            .node::<Recorder>(r)
            .unwrap()
            .got
            .iter()
            .map(|g| g.0)
            .collect();
        assert_eq!(baseline, vec![1, 2]);
    }

    #[test]
    fn restart_reruns_on_start() {
        struct Beater {
            beats: u64,
        }
        impl Node<TestMsg> for Beater {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Nanos(100), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _t: u64) {
                self.beats += 1;
                ctx.timer(Nanos(100), 0);
            }
            fn on_msg(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: NodeId, _m: TestMsg) {}
        }
        let mut e = engine();
        let b = e.add_node("b", Box::new(Beater { beats: 0 }));
        e.run_until(Nanos(1_000));
        let after_first = e.node::<Beater>(b).unwrap().beats;
        assert!(after_first >= 9);
        // Kill: the timer chain dies with the node.
        e.kill(b);
        e.run_until(Nanos(2_000));
        assert_eq!(e.node::<Beater>(b).unwrap().beats, after_first);
        // Plain revive does NOT resurrect the chain...
        e.revive(b);
        e.run_until(Nanos(3_000));
        assert_eq!(e.node::<Beater>(b).unwrap().beats, after_first);
        // ...but restart re-runs on_start, which re-arms it.
        e.kill(b);
        e.restart(b);
        e.run_until(Nanos(4_000));
        assert!(e.node::<Beater>(b).unwrap().beats > after_first);
    }

    #[test]
    fn reconfigure_link_applies() {
        let mut e = engine();
        let a = e.add_node(
            "a",
            Box::new(Pinger {
                peer: NodeId(1),
                sent: 0,
            }),
        );
        let r = e.add_node("r", Box::new(Recorder::default()));
        e.connect(a, r, LinkParams::ideal(Nanos(10)));
        e.run_until(Nanos(150)); // first send at t=100 arrives t=110
        e.reconfigure_link(a, r, LinkParams::ideal(Nanos(10)).drop_chance(1.0));
        e.run_until(Nanos(10_000));
        assert_eq!(e.node::<Recorder>(r).unwrap().got.len(), 1);
    }
}
