//! Deterministic chaos engineering for the simulator.
//!
//! This module provides the three generic pieces of the chaos subsystem
//! (the Slingshot-aware fault *application* lives in the `core` crate,
//! which knows the deployment topology):
//!
//! 1. A scenario DSL: a [`Scenario`] is a named list of slot-scheduled
//!    [`Fault`]s (`Fault { at_slot, target, kind }`) covering the failure
//!    modes the paper argues a resilient vRAN must survive (§2, §6) —
//!    PHY crash, PHY hang/slowdown, link partition, burst loss, IQ
//!    corruption, duplicated/reordered fronthaul packets, Orion restart,
//!    and migration-request storms.
//! 2. A seeded randomized scheduler ([`ChaosDistribution`]) that samples
//!    fault sequences from a configurable distribution. A whole scenario
//!    is reproducible from one `u64` seed; harnesses print the seed on
//!    failure so any run can be replayed byte-identically.
//! 3. A trace-driven invariant checker ([`oracle`]) that replays the
//!    recorded event trace after a run and asserts the paper's bounds:
//!    detection latency, dropped-TTI count, no duplicate FAPI responses
//!    reaching L2, exactly one active PHY per slot, and eventual
//!    re-pairing after failover.
//!
//! Everything here is pure data + pure functions over the trace; nothing
//! touches the engine directly, so the same scenarios can drive future
//! deployments (multi-RU, baseline) through their own runners.

use crate::time::Nanos;
use crate::trace::{detections, dropped_ttis, TraceBuffer, TraceEventKind};
use crate::SimRng;

/// What a fault acts on, in deployment-symbolic terms. The runner (in
/// the `core` crate) resolves these against the live topology at the
/// moment the fault fires, so "the active PHY" tracks failovers that
/// earlier faults in the same scenario caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The PHY currently serving the RU (resolved at injection time).
    /// Alias for `ActivePhyOf(0)`, kept for single-cell scenarios.
    ActivePhy,
    /// The current standby PHY for the RU. Alias for `StandbyPhyOf(0)`.
    StandbyPhy,
    /// The PHY currently serving cell `ru` in a multi-cell deployment
    /// (resolved at injection time, so it tracks earlier failovers).
    ActivePhyOf(u8),
    /// The current standby PHY of cell `ru`.
    StandbyPhyOf(u8),
    /// Both directions of the RU <-> switch fronthaul link.
    Fronthaul,
    /// RU -> switch only (uplink IQ samples).
    FronthaulUplink,
    /// Switch -> RU only (downlink slot data + heartbeats).
    FronthaulDownlink,
    /// The L2-side Orion shim process.
    OrionL2,
}

impl std::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultTarget::ActivePhy => f.write_str("active-phy"),
            FaultTarget::StandbyPhy => f.write_str("standby-phy"),
            FaultTarget::ActivePhyOf(ru) => write!(f, "active-phy[cell{ru}]"),
            FaultTarget::StandbyPhyOf(ru) => write!(f, "standby-phy[cell{ru}]"),
            FaultTarget::Fronthaul => f.write_str("fronthaul"),
            FaultTarget::FronthaulUplink => f.write_str("fronthaul-ul"),
            FaultTarget::FronthaulDownlink => f.write_str("fronthaul-dl"),
            FaultTarget::OrionL2 => f.write_str("orion-l2"),
        }
    }
}

/// The failure mode to inject. Durations are in slots (500 us each).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop process crash (SIGKILL); the node never comes back on
    /// its own — recovery, if any, comes from Slingshot's failover.
    PhyCrash,
    /// The PHY stays alive but misses its TTI deadlines for `slots`
    /// slots: no heartbeats, no uplink processing (a wedged DPDK poll
    /// loop, a long GC pause). After the window it resumes — by then the
    /// switch has usually failed over, so the revenant's downlink is
    /// filtered and it idles on null FAPI as an unpaired warm process
    /// (no split brain).
    PhyHang { slots: u64 },
    /// Drop every packet in both directions for `slots` slots.
    LinkPartition { slots: u64 },
    /// Drop each packet with probability `p` for `slots` slots.
    BurstLoss { p: f64, slots: u64 },
    /// Corrupt each packet with probability `p` for `slots` slots
    /// (bit-flips in IQ payloads; the FEC/CRC chain has to absorb it).
    IqCorrupt { p: f64, slots: u64 },
    /// Duplicate each packet with probability `p` for `slots` slots.
    DupPackets { p: f64, slots: u64 },
    /// With probability `p`, hold a packet back by `hold` so later
    /// packets overtake it, for `slots` slots.
    ReorderPackets { p: f64, hold: Nanos, slots: u64 },
    /// Kill the target process and restart it `down_slots` later; the
    /// restarted process re-runs its startup path with retained config
    /// (Slingshot's Orion shim is deliberately restart-tolerant, §4.2).
    OrionRestart { down_slots: u64 },
    /// Fire `requests` planned-migration requests back to back — the
    /// control plane must serialize them (one in-flight migration per
    /// RU) without dropping TTIs.
    MigrationStorm { requests: u32 },
    /// A single operator-initiated planned migration (§6.2).
    PlannedMigration,
}

impl FaultKind {
    /// Whether this fault permanently removes a PHY from service when
    /// aimed at a PHY target (used by the sampler to bound how much
    /// redundancy a random scenario may burn).
    pub fn lethal_to_phy(&self) -> bool {
        matches!(self, FaultKind::PhyCrash | FaultKind::PhyHang { .. })
    }

    /// The window during which the fault actively degrades the system.
    pub fn duration_slots(&self) -> u64 {
        match *self {
            FaultKind::PhyHang { slots }
            | FaultKind::LinkPartition { slots }
            | FaultKind::BurstLoss { slots, .. }
            | FaultKind::IqCorrupt { slots, .. }
            | FaultKind::DupPackets { slots, .. }
            | FaultKind::ReorderPackets { slots, .. } => slots,
            FaultKind::OrionRestart { down_slots } => down_slots,
            FaultKind::PhyCrash
            | FaultKind::MigrationStorm { .. }
            | FaultKind::PlannedMigration => 0,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultKind::PhyCrash => write!(f, "phy-crash"),
            FaultKind::PhyHang { slots } => write!(f, "phy-hang({slots} slots)"),
            FaultKind::LinkPartition { slots } => write!(f, "partition({slots} slots)"),
            FaultKind::BurstLoss { p, slots } => write!(f, "burst-loss(p={p:.2}, {slots} slots)"),
            FaultKind::IqCorrupt { p, slots } => write!(f, "iq-corrupt(p={p:.2}, {slots} slots)"),
            FaultKind::DupPackets { p, slots } => write!(f, "dup(p={p:.2}, {slots} slots)"),
            FaultKind::ReorderPackets { p, hold, slots } => {
                write!(
                    f,
                    "reorder(p={p:.2}, hold={}us, {slots} slots)",
                    hold.0 / 1_000
                )
            }
            FaultKind::OrionRestart { down_slots } => {
                write!(f, "orion-restart({down_slots} slots down)")
            }
            FaultKind::MigrationStorm { requests } => write!(f, "migration-storm({requests})"),
            FaultKind::PlannedMigration => write!(f, "planned-migration"),
        }
    }
}

/// One scheduled fault: at absolute slot `at_slot`, apply `kind` to
/// `target`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    pub at_slot: u64,
    pub target: FaultTarget,
    pub kind: FaultKind,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{} {} {}", self.at_slot, self.target, self.kind)
    }
}

/// A named, ordered fault schedule plus the run horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    pub faults: Vec<Fault>,
    /// Run the simulation until this absolute slot before judging.
    pub horizon_slots: u64,
}

impl Scenario {
    pub fn new(name: &str, horizon_slots: u64) -> Scenario {
        Scenario {
            name: name.to_string(),
            faults: Vec::new(),
            horizon_slots,
        }
    }

    /// Builder-style: append a fault (kept sorted by slot at run time).
    pub fn fault(mut self, at_slot: u64, target: FaultTarget, kind: FaultKind) -> Scenario {
        self.faults.push(Fault {
            at_slot,
            target,
            kind,
        });
        self
    }

    /// Faults sorted by injection slot (stable for equal slots).
    pub fn sorted_faults(&self) -> Vec<Fault> {
        let mut f = self.faults.clone();
        f.sort_by_key(|x| x.at_slot);
        f
    }

    /// One-line human description, printed by harnesses on failure.
    pub fn describe(&self) -> String {
        let faults: Vec<String> = self.sorted_faults().iter().map(|f| f.to_string()).collect();
        format!("{}: [{}]", self.name, faults.join(", "))
    }
}

/// Configurable distribution over fault sequences. `sample(seed)` is a
/// pure function: the same seed always yields the same scenario, which
/// is what makes a failing nightly seed replayable locally.
#[derive(Debug, Clone)]
pub struct ChaosDistribution {
    /// Earliest slot a fault may fire (leave room for UE attach and
    /// traffic ramp-up).
    pub first_fault_slot: u64,
    /// Latest slot a new fault may fire.
    pub last_fault_slot: u64,
    /// Minimum spacing between fault injection slots, so one disruption
    /// settles (failover completes, links restore) before the next hits.
    pub min_gap_slots: u64,
    /// Upper bound on faults per scenario (at least one is always drawn).
    pub max_faults: usize,
    /// Slots to keep running after the last fault before judging.
    pub cooldown_slots: u64,
}

impl Default for ChaosDistribution {
    fn default() -> ChaosDistribution {
        ChaosDistribution {
            first_fault_slot: 700,
            last_fault_slot: 1500,
            min_gap_slots: 250,
            max_faults: 3,
            cooldown_slots: 700,
        }
    }
}

impl ChaosDistribution {
    /// Sample a scenario. At most one PHY-lethal fault is drawn per
    /// scenario: a single spare only restores redundancy once, and the
    /// oracle's bounds assume the deployment is never asked to survive
    /// more simultaneous failures than the paper's provisioning model
    /// (§4.4) provides for.
    pub fn sample(&self, seed: u64) -> Scenario {
        let mut rng = SimRng::new(seed ^ 0x5eed_c4a0_5eed_c4a0);
        let n = 1 + rng.below(self.max_faults as u64) as usize;
        let mut scenario = Scenario::new(&format!("rand-{seed:#x}"), 0);
        let mut slot =
            self.first_fault_slot + rng.below(self.last_fault_slot - self.first_fault_slot);
        let mut lethal_used = false;
        let mut last_slot = slot;
        for _ in 0..n {
            let (target, kind) = self.sample_fault(&mut rng, &mut lethal_used);
            scenario.faults.push(Fault {
                at_slot: slot,
                target,
                kind,
            });
            last_slot = slot + kind.duration_slots();
            slot += self.min_gap_slots + rng.below(self.min_gap_slots);
        }
        scenario.horizon_slots = last_slot + self.cooldown_slots;
        scenario
    }

    fn sample_fault(&self, rng: &mut SimRng, lethal_used: &mut bool) -> (FaultTarget, FaultKind) {
        loop {
            // Weighted table; weights sum to 13.
            let draw = rng.below(13);
            let (target, kind) = match draw {
                0 | 1 => (FaultTarget::ActivePhy, FaultKind::PhyCrash),
                2 | 3 => (
                    FaultTarget::ActivePhy,
                    FaultKind::PhyHang {
                        slots: 10 + rng.below(50),
                    },
                ),
                4 | 5 => (
                    FaultTarget::Fronthaul,
                    FaultKind::BurstLoss {
                        p: 0.05 + rng.range_f64(0.0, 0.25),
                        slots: 20 + rng.below(80),
                    },
                ),
                6 => (
                    FaultTarget::Fronthaul,
                    FaultKind::LinkPartition {
                        slots: 4 + rng.below(12),
                    },
                ),
                7 | 8 => (
                    FaultTarget::FronthaulUplink,
                    FaultKind::IqCorrupt {
                        p: 0.02 + rng.range_f64(0.0, 0.10),
                        slots: 20 + rng.below(80),
                    },
                ),
                9 => (
                    FaultTarget::Fronthaul,
                    FaultKind::DupPackets {
                        p: 0.05 + rng.range_f64(0.0, 0.30),
                        slots: 20 + rng.below(80),
                    },
                ),
                10 => (
                    FaultTarget::Fronthaul,
                    FaultKind::ReorderPackets {
                        p: 0.05 + rng.range_f64(0.0, 0.20),
                        hold: Nanos(20_000 + rng.below(130_000)),
                        slots: 20 + rng.below(80),
                    },
                ),
                11 => (
                    FaultTarget::OrionL2,
                    FaultKind::OrionRestart {
                        down_slots: 5 + rng.below(15),
                    },
                ),
                _ => {
                    if rng.chance(0.5) {
                        (
                            FaultTarget::OrionL2,
                            FaultKind::MigrationStorm {
                                requests: 2 + rng.below(5) as u32,
                            },
                        )
                    } else {
                        (FaultTarget::OrionL2, FaultKind::PlannedMigration)
                    }
                }
            };
            if kind.lethal_to_phy() {
                if *lethal_used {
                    continue; // redraw: one lethal fault per scenario
                }
                *lethal_used = true;
            }
            return (target, kind);
        }
    }
}

/// Trace-driven invariant checking: replay the event trace after a run
/// and assert the paper's bounds. Each invariant cites the claim it
/// guards (see DESIGN.md §5c).
pub mod oracle {
    use super::*;
    use crate::time::SLOT_DURATION;

    /// What a scenario is allowed to cost. Built per scenario by
    /// [`Expectations::for_scenario`] so the allowance follows the
    /// injected damage instead of being one global constant.
    #[derive(Debug, Clone)]
    pub struct Expectations {
        /// Paper §5.2: in-switch detection fires within the 450 us
        /// timeout period of the last heartbeat.
        pub max_detection_latency: Nanos,
        /// Paper §6.1: a PHY crash costs at most 3 dropped TTIs; link
        /// and control-plane faults widen this budget proportionally.
        pub max_dropped_ttis: u64,
        /// Uplink slots per TDD cycle stride (DDDSU = every 5th slot).
        pub tdd_stride: u64,
        /// Whether the run must end re-paired: after the last map flip
        /// an active PHY serves traffic *and* a standby receives
        /// null-FAPI keep-alives (§4.3's warm standby contract).
        pub expect_repair: bool,
        /// Per-cell mode: `(ru, primary phy)` at slot 0 for every cell.
        /// When non-empty the oracle reconstructs each cell's active-PHY
        /// ownership timeline from `MapFlip` events and judges the
        /// dropped-TTI, one-active-PHY, duplicate-FAPI, and repair
        /// invariants *per cell* instead of globally (a second cell
        /// delivering the same absolute slot is normal, not split brain).
        pub initial_active: Vec<(u64, u64)>,
        /// Shared spare-pool size at slot 0. When set the oracle audits
        /// the pool ledger: every `SpareGranted`/`SpareReturned` must
        /// carry a running count consistent with this initial size, no
        /// grant may come from an empty pool, and every `SpareRequested`
        /// cell must eventually be granted a spare and re-paired
        /// (`StandbyRepaired`).
        pub expect_pool: Option<u64>,
    }

    impl Default for Expectations {
        fn default() -> Expectations {
            Expectations {
                max_detection_latency: Nanos::from_micros(450),
                max_dropped_ttis: 3,
                tdd_stride: 5,
                expect_repair: false,
                initial_active: Vec::new(),
                expect_pool: None,
            }
        }
    }

    impl Expectations {
        /// Derive the damage budget for a scenario. `has_spare` is
        /// whether the deployment keeps a spare PHY to re-pair with
        /// after a failover consumes the standby.
        pub fn for_scenario(scenario: &Scenario, has_spare: bool) -> Expectations {
            let mut allowed: u64 = 0;
            let mut lethal = false;
            let mut flips = false;
            for f in &scenario.faults {
                match f.kind {
                    FaultKind::PhyCrash => {
                        if matches!(
                            f.target,
                            FaultTarget::ActivePhy | FaultTarget::ActivePhyOf(_)
                        ) {
                            allowed += 3;
                            lethal = true;
                        } else {
                            allowed += 1;
                        }
                    }
                    FaultKind::PhyHang { slots } => {
                        if matches!(
                            f.target,
                            FaultTarget::ActivePhy | FaultTarget::ActivePhyOf(_)
                        ) {
                            // Detection + failover costs <= 3; a hang too
                            // short to trip the detector instead skips up
                            // to slots/stride TTIs outright.
                            allowed += 3 + slots.div_ceil(5) + 1;
                            lethal = true;
                        } else {
                            // A hung standby drops no traffic; it only
                            // burns the redundancy margin.
                            allowed += 1;
                        }
                    }
                    FaultKind::LinkPartition { slots } | FaultKind::BurstLoss { slots, .. } => {
                        allowed += slots.div_ceil(5) + 2;
                    }
                    FaultKind::IqCorrupt { .. } => allowed += 2,
                    FaultKind::DupPackets { .. } | FaultKind::ReorderPackets { .. } => allowed += 1,
                    FaultKind::OrionRestart { down_slots } => {
                        allowed += down_slots.div_ceil(5) + 3;
                    }
                    FaultKind::MigrationStorm { .. } => {
                        allowed += 1;
                        flips = true;
                    }
                    FaultKind::PlannedMigration => flips = true,
                }
            }
            Expectations {
                max_dropped_ttis: allowed.max(3),
                expect_repair: (lethal && has_spare) || (flips && !lethal),
                ..Expectations::default()
            }
        }
    }

    /// A single invariant violation, with enough detail to debug from a
    /// CI log alone.
    #[derive(Debug, Clone)]
    pub struct Violation {
        pub invariant: &'static str,
        pub detail: String,
    }

    impl std::fmt::Display for Violation {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "[{}] {}", self.invariant, self.detail)
        }
    }

    /// The oracle's verdict plus the derived measures it judged on.
    #[derive(Debug, Clone)]
    pub struct OracleReport {
        pub violations: Vec<Violation>,
        pub detections: usize,
        pub max_detection_latency: Nanos,
        pub delivered_ttis: u64,
        pub dropped_ttis: u64,
    }

    impl OracleReport {
        pub fn ok(&self) -> bool {
            self.violations.is_empty()
        }
    }

    /// Replay `trace` and check every invariant against `exp`.
    pub fn check(trace: &TraceBuffer, exp: &Expectations) -> OracleReport {
        let mut violations = Vec::new();

        // Invariant 1: detection latency (paper §5.2, Fig. 7). Every
        // DetectorSaturated must fire within the timeout period of the
        // last heartbeat the switch saw from the failed PHY.
        let dets = detections(trace.iter());
        let mut max_latency = Nanos::ZERO;
        for d in &dets {
            let lat = d.latency();
            max_latency = max_latency.max(lat);
            if lat > exp.max_detection_latency {
                violations.push(Violation {
                    invariant: "detection-latency",
                    detail: format!(
                        "phy {} detected {} us after last heartbeat (bound {} us)",
                        d.phy,
                        lat.0 / 1_000,
                        exp.max_detection_latency.0 / 1_000
                    ),
                });
            }
        }

        let delivered = crate::trace::delivered_ul_slots(trace.iter());
        // Global measure for the report; in per-cell mode the *checked*
        // budgets are per cell (a cell's blackout must not be masked by
        // its neighbours delivering the same absolute slots).
        let dropped = dropped_ttis(&delivered, exp.tdd_stride);

        if exp.initial_active.is_empty() {
            // Invariant 2: dropped-TTI budget (paper §6.1, Table 1).
            if dropped > exp.max_dropped_ttis {
                violations.push(Violation {
                    invariant: "dropped-ttis",
                    detail: format!(
                        "{} TTIs dropped (budget {}), {} delivered",
                        dropped,
                        exp.max_dropped_ttis,
                        delivered.len()
                    ),
                });
            }

            // Invariant 3: exactly one active PHY per slot (§4.3). Two
            // PHYs completing uplink processing for the same absolute
            // slot means the switch steered (or failed to filter) both
            // replicas.
            let mut per_slot: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
            for e in trace.of_kind(TraceEventKind::UlSlotProcessed) {
                let phys = per_slot.entry(e.a).or_default();
                if !phys.contains(&e.b) {
                    phys.push(e.b);
                }
            }
            for (slot, phys) in &per_slot {
                if phys.len() > 1 {
                    violations.push(Violation {
                        invariant: "one-active-phy",
                        detail: format!("slot {slot} processed by {} PHYs: {:?}", phys.len(), phys),
                    });
                }
            }

            // Invariant 4: no duplicate FAPI responses reaching L2
            // (§4.3's exactly-once delivery across failover; Orion must
            // absorb late results from the old primary, not forward them
            // twice).
            let mut fapi_per_slot: std::collections::BTreeMap<u64, u64> = Default::default();
            for e in trace.of_kind(TraceEventKind::FapiToL2) {
                *fapi_per_slot.entry(e.b).or_insert(0) += 1;
            }
            for (slot, count) in &fapi_per_slot {
                if *count > 1 {
                    violations.push(Violation {
                        invariant: "no-dup-fapi",
                        detail: format!("slot {slot}: {count} FAPI uplink responses reached L2"),
                    });
                }
            }
        } else {
            check_per_cell(trace, exp, &mut violations);
        }

        // Invariant 5: eventual re-pairing (§4.4). After the last map
        // flip, traffic must flow on the new active PHY and a standby
        // must be kept warm with null FAPI messages.
        if exp.expect_repair {
            let last_flip = trace.of_kind(TraceEventKind::MapFlip).map(|e| e.at).max();
            match last_flip {
                None => violations.push(Violation {
                    invariant: "eventual-repair",
                    detail: "no MapFlip recorded although the scenario requires a failover"
                        .to_string(),
                }),
                Some(flip_at) => {
                    // Give the control plane a grace window to finalize
                    // (boundary + 4 slots) before demanding keep-alives.
                    let settle = flip_at + Nanos(SLOT_DURATION.0 * 10);
                    let served = trace
                        .of_kind(TraceEventKind::UlSlotProcessed)
                        .any(|e| e.at > settle);
                    let kept_warm = trace
                        .of_kind(TraceEventKind::NullFapiSent)
                        .any(|e| e.at > settle);
                    if !served {
                        violations.push(Violation {
                            invariant: "eventual-repair",
                            detail: format!(
                                "no uplink TTIs delivered after the last map flip at {} us",
                                flip_at.0 / 1_000
                            ),
                        });
                    }
                    if !kept_warm {
                        violations.push(Violation {
                            invariant: "eventual-repair",
                            detail: format!(
                                "no null-FAPI keep-alives to a standby after the last map flip \
                                 at {} us (binding did not re-pair)",
                                flip_at.0 / 1_000
                            ),
                        });
                    }
                }
            }
        }

        // Invariant 6: pool accounting ("eventually re-paired with pool
        // accounting"). The recovery orchestrator's grant/return ledger
        // must balance against the configured pool size, and every cell
        // that asked for a spare must end up granted *and* re-paired.
        if let Some(pool0) = exp.expect_pool {
            check_pool_ledger(trace, pool0, &mut violations);
        }

        OracleReport {
            violations,
            detections: dets.len(),
            max_detection_latency: max_latency,
            delivered_ttis: delivered.len() as u64,
            dropped_ttis: dropped,
        }
    }

    /// Active-PHY owner of a cell at `slot`, from its flip timeline
    /// (`[(from_slot, phy)]`, sorted by construction).
    fn owner_at(timeline: &[(u64, u64)], slot: u64) -> u64 {
        timeline
            .iter()
            .rev()
            .find(|&&(from, _)| from <= slot)
            .map(|&(_, phy)| phy)
            .unwrap_or(u64::MAX)
    }

    /// Per-cell invariants 2-4 for multi-cell deployments. Ownership is
    /// reconstructed from `MapFlip` events (a = ru, b = old<<16 | new)
    /// layered over `exp.initial_active`, so every `UlSlotProcessed` can
    /// be attributed to the cell whose active PHY produced it.
    fn check_per_cell(trace: &TraceBuffer, exp: &Expectations, violations: &mut Vec<Violation>) {
        use std::collections::BTreeMap;

        let mut timelines: BTreeMap<u64, Vec<(u64, u64)>> = exp
            .initial_active
            .iter()
            .map(|&(ru, phy)| (ru, vec![(0, phy)]))
            .collect();
        let mut flips: Vec<_> = trace.of_kind(TraceEventKind::MapFlip).collect();
        flips.sort_by_key(|e| e.at);
        for e in &flips {
            let slot = e.at.0 / SLOT_DURATION.0;
            timelines.entry(e.a).or_default().push((slot, e.b & 0xFFFF));
        }

        // Attribute a (phy, slot) pair to the cell whose active-PHY
        // timeline covers it; +-1 slot of grace absorbs flip-boundary
        // races (the flip trace lands mid-slot while the old owner's
        // last in-flight slot completes).
        let attribute = |phy: u64, slot: u64| -> Option<u64> {
            timelines
                .iter()
                .find(|(_, tl)| owner_at(tl, slot) == phy)
                .or_else(|| {
                    timelines.iter().find(|(_, tl)| {
                        owner_at(tl, slot.saturating_sub(1)) == phy || owner_at(tl, slot + 1) == phy
                    })
                })
                .map(|(&ru, _)| ru)
        };

        // Invariants 2 + 3, per cell: attribute every delivered UL slot,
        // flag unattributable producers (a PHY no cell owns is serving
        // traffic: split brain or a leaking ex-primary), then apply the
        // dropped-TTI budget and one-active-PHY rule cell by cell.
        let mut per_ru_delivered: BTreeMap<u64, Vec<u64>> =
            timelines.keys().map(|&ru| (ru, Vec::new())).collect();
        let mut per_ru_slot: BTreeMap<(u64, u64), Vec<u64>> = BTreeMap::new();
        for e in trace.of_kind(TraceEventKind::UlSlotProcessed) {
            match attribute(e.b, e.a) {
                Some(ru) => {
                    per_ru_delivered.entry(ru).or_default().push(e.a);
                    let phys = per_ru_slot.entry((ru, e.a)).or_default();
                    if !phys.contains(&e.b) {
                        phys.push(e.b);
                    }
                }
                None => violations.push(Violation {
                    invariant: "one-active-phy",
                    detail: format!(
                        "slot {} processed by PHY {} which no cell's active mapping owns",
                        e.a, e.b
                    ),
                }),
            }
        }
        for (ru, slots) in &mut per_ru_delivered {
            slots.sort_unstable();
            slots.dedup();
            let dropped = dropped_ttis(slots, exp.tdd_stride);
            if dropped > exp.max_dropped_ttis {
                violations.push(Violation {
                    invariant: "dropped-ttis",
                    detail: format!(
                        "cell {}: {} TTIs dropped (budget {}), {} delivered",
                        ru,
                        dropped,
                        exp.max_dropped_ttis,
                        slots.len()
                    ),
                });
            }
        }
        for ((ru, slot), phys) in &per_ru_slot {
            if phys.len() > 1 {
                violations.push(Violation {
                    invariant: "one-active-phy",
                    detail: format!(
                        "cell {ru} slot {slot} processed by {} PHYs: {:?}",
                        phys.len(),
                        phys
                    ),
                });
            }
        }

        // Invariant 4, per cell: each cell's L2-side Orion is a distinct
        // node, so key duplicates by (forwarding node, slot).
        let mut fapi_per_slot: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for e in trace.of_kind(TraceEventKind::FapiToL2) {
            *fapi_per_slot.entry((e.node.0 as u64, e.b)).or_insert(0) += 1;
        }
        for ((node, slot), count) in &fapi_per_slot {
            if *count > 1 {
                violations.push(Violation {
                    invariant: "no-dup-fapi",
                    detail: format!(
                        "node {node} slot {slot}: {count} FAPI uplink responses reached L2"
                    ),
                });
            }
        }

        // Per-cell eventual repair: every cell that flipped must, after
        // its own last flip settles, both serve traffic on the new
        // active PHY and keep a standby warm (null FAPI, a = ru).
        for (ru, tl) in &timelines {
            if tl.len() < 2 {
                continue;
            }
            let settle = tl.last().unwrap().0 + 10;
            let served = per_ru_delivered
                .get(ru)
                .is_some_and(|slots| slots.iter().any(|&s| s > settle));
            let kept_warm = trace
                .of_kind(TraceEventKind::NullFapiSent)
                .any(|e| e.a == *ru && e.b > settle);
            if !served {
                violations.push(Violation {
                    invariant: "eventual-repair",
                    detail: format!(
                        "cell {ru}: no uplink TTIs delivered after its last map flip (slot {})",
                        tl.last().unwrap().0
                    ),
                });
            }
            if !kept_warm {
                violations.push(Violation {
                    invariant: "eventual-repair",
                    detail: format!(
                        "cell {ru}: no null-FAPI keep-alives after its last map flip (slot {}) \
                         — the cell did not re-pair",
                        tl.last().unwrap().0
                    ),
                });
            }
        }
    }

    /// The pool ledger: replay `SpareRequested`/`SpareGranted`/
    /// `SpareReturned` chronologically against the configured initial
    /// pool size, and require the request -> grant -> `StandbyRepaired`
    /// chain to complete for every requesting cell.
    fn check_pool_ledger(trace: &TraceBuffer, pool0: u64, violations: &mut Vec<Violation>) {
        use std::collections::BTreeMap;

        let mut ledger: Vec<_> = trace
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceEventKind::SpareRequested
                        | TraceEventKind::SpareGranted
                        | TraceEventKind::SpareReturned
                )
            })
            .collect();
        ledger.sort_by_key(|e| e.at);

        let mut running = pool0 as i64;
        for e in &ledger {
            match e.kind {
                TraceEventKind::SpareGranted => {
                    running -= 1;
                    if running < 0 {
                        violations.push(Violation {
                            invariant: "pool-accounting",
                            detail: format!(
                                "cell {} granted a spare from an empty pool at {} us",
                                e.a,
                                e.at.0 / 1_000
                            ),
                        });
                        running = 0;
                    }
                    let recorded = (e.b & 0xFFFF) as i64;
                    if recorded != running {
                        violations.push(Violation {
                            invariant: "pool-accounting",
                            detail: format!(
                                "grant to cell {} recorded pool size {recorded}, ledger says \
                                 {running}",
                                e.a
                            ),
                        });
                    }
                }
                TraceEventKind::SpareReturned => {
                    running += 1;
                    if running > pool0 as i64 {
                        violations.push(Violation {
                            invariant: "pool-accounting",
                            detail: format!(
                                "PHY {} returned to an already-full pool (size would be \
                                 {running} > {pool0})",
                                e.a
                            ),
                        });
                        running = pool0 as i64;
                    }
                    if e.b as i64 != running {
                        violations.push(Violation {
                            invariant: "pool-accounting",
                            detail: format!(
                                "return of PHY {} recorded pool size {}, ledger says {running}",
                                e.a, e.b
                            ),
                        });
                    }
                }
                _ => {}
            }
        }

        // Chain completeness per cell: requested -> granted -> repaired.
        let mut requested: BTreeMap<u64, u64> = BTreeMap::new();
        let mut granted: BTreeMap<u64, u64> = BTreeMap::new();
        let mut repaired: BTreeMap<u64, u64> = BTreeMap::new();
        for e in trace.iter() {
            match e.kind {
                TraceEventKind::SpareRequested => *requested.entry(e.a).or_insert(0) += 1,
                TraceEventKind::SpareGranted => *granted.entry(e.a).or_insert(0) += 1,
                TraceEventKind::StandbyRepaired => *repaired.entry(e.a).or_insert(0) += 1,
                _ => {}
            }
        }
        for (ru, &want) in &requested {
            let got = granted.get(ru).copied().unwrap_or(0);
            if got < want {
                violations.push(Violation {
                    invariant: "pool-accounting",
                    detail: format!(
                        "cell {ru} requested {want} spare(s) but was granted only {got}"
                    ),
                });
            }
        }
        for (ru, &want) in &granted {
            let got = repaired.get(ru).copied().unwrap_or(0);
            if got < want {
                violations.push(Violation {
                    invariant: "pool-accounting",
                    detail: format!(
                        "cell {ru} was granted {want} spare(s) but completed only {got} \
                         re-pairing(s)"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::{check, Expectations};
    use super::*;
    use crate::engine::NodeId;
    use crate::time::{SlotId, SLOT_DURATION};
    use crate::trace::TraceBuffer;

    fn slot_time(abs: u64) -> Nanos {
        Nanos(abs * SLOT_DURATION.0)
    }

    fn record(tb: &mut TraceBuffer, abs: u64, kind: TraceEventKind, a: u64, b: u64) {
        tb.record_at_slot(
            slot_time(abs),
            NodeId(0),
            SlotId::from_absolute(abs),
            kind,
            a,
            b,
        );
    }

    fn record_node(
        tb: &mut TraceBuffer,
        abs: u64,
        node: usize,
        kind: TraceEventKind,
        a: u64,
        b: u64,
    ) {
        tb.record_at_slot(
            slot_time(abs),
            NodeId(node),
            SlotId::from_absolute(abs),
            kind,
            a,
            b,
        );
    }

    /// Two healthy cells: cell 0 on PHY 1 (Orion node 11), cell 1 on
    /// PHY 3 (Orion node 21). Both deliver every UL slot.
    fn multi_cell_trace(slots: u64) -> TraceBuffer {
        let mut tb = TraceBuffer::new(1 << 16);
        for abs in (0..slots).filter(|s| s % 5 == 4) {
            record_node(&mut tb, abs, 10, TraceEventKind::UlSlotProcessed, abs, 1);
            record_node(&mut tb, abs, 11, TraceEventKind::FapiToL2, 1, abs);
            record_node(&mut tb, abs, 20, TraceEventKind::UlSlotProcessed, abs, 3);
            record_node(&mut tb, abs, 21, TraceEventKind::FapiToL2, 3, abs);
        }
        tb
    }

    fn multi_exp() -> Expectations {
        Expectations {
            initial_active: vec![(0, 1), (1, 3)],
            ..Expectations::default()
        }
    }

    /// A clean trace: UL slot every 5th slot from one PHY, each slot's
    /// FAPI response forwarded once.
    fn healthy_trace(slots: u64) -> TraceBuffer {
        let mut tb = TraceBuffer::new(1 << 16);
        for abs in (0..slots).filter(|s| s % 5 == 4) {
            record(&mut tb, abs, TraceEventKind::UlSlotProcessed, abs, 1);
            record(&mut tb, abs, TraceEventKind::FapiToL2, 1, abs);
        }
        tb
    }

    #[test]
    fn healthy_trace_passes() {
        let tb = healthy_trace(500);
        let rep = check(&tb, &Expectations::default());
        assert!(rep.ok(), "unexpected violations: {:?}", rep.violations);
        assert_eq!(rep.dropped_ttis, 0);
    }

    #[test]
    fn split_brain_flagged() {
        let mut tb = healthy_trace(100);
        // Slot 44 also processed by PHY 2.
        record(&mut tb, 44, TraceEventKind::UlSlotProcessed, 44, 2);
        let rep = check(&tb, &Expectations::default());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "one-active-phy"));
    }

    #[test]
    fn duplicate_fapi_flagged() {
        let mut tb = healthy_trace(100);
        record(&mut tb, 49, TraceEventKind::FapiToL2, 2, 49);
        let rep = check(&tb, &Expectations::default());
        assert!(rep.violations.iter().any(|v| v.invariant == "no-dup-fapi"));
    }

    #[test]
    fn excess_dropped_ttis_flagged() {
        let mut tb = TraceBuffer::new(1 << 16);
        // UL slots 4..200 with a 6-TTI hole in the middle.
        for abs in (0..200u64).filter(|s| s % 5 == 4) {
            if (60..90).contains(&abs) {
                continue;
            }
            record(&mut tb, abs, TraceEventKind::UlSlotProcessed, abs, 1);
        }
        let rep = check(&tb, &Expectations::default());
        assert!(rep.violations.iter().any(|v| v.invariant == "dropped-ttis"));
        assert_eq!(rep.dropped_ttis, 6);
    }

    #[test]
    fn late_detection_flagged() {
        let mut tb = healthy_trace(100);
        // Saturation 600us after the last heartbeat (bound is 450us).
        let last_hb = slot_time(50);
        tb.record(
            last_hb + Nanos::from_micros(600),
            NodeId(3),
            TraceEventKind::DetectorSaturated,
            1,
            last_hb.0,
        );
        let rep = check(&tb, &Expectations::default());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "detection-latency"));
        assert_eq!(rep.detections, 1);
    }

    #[test]
    fn missing_repair_flagged() {
        let mut tb = healthy_trace(100);
        record(&mut tb, 50, TraceEventKind::MapFlip, 7, (1 << 16) | 2);
        let exp = Expectations {
            expect_repair: true,
            ..Expectations::default()
        };
        // Traffic continues (healthy trace covers slots > flip) but no
        // null-FAPI keep-alive ever appears.
        let rep = check(&tb, &exp);
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "eventual-repair"));
        // Adding the keep-alive clears it.
        record(&mut tb, 99, TraceEventKind::NullFapiSent, 7, 99);
        let rep = check(&tb, &exp);
        assert!(rep.ok(), "unexpected violations: {:?}", rep.violations);
    }

    #[test]
    fn sampler_is_deterministic_and_seed_sensitive() {
        let dist = ChaosDistribution::default();
        let a = dist.sample(42);
        let b = dist.sample(42);
        assert_eq!(a, b);
        let c = dist.sample(43);
        assert_ne!(a, c);
        assert!(!a.faults.is_empty() && a.faults.len() <= dist.max_faults);
        assert!(a.horizon_slots > a.sorted_faults().last().unwrap().at_slot);
    }

    #[test]
    fn sampler_draws_at_most_one_lethal_fault() {
        let dist = ChaosDistribution::default();
        for seed in 0..200 {
            let s = dist.sample(seed);
            let lethal = s.faults.iter().filter(|f| f.kind.lethal_to_phy()).count();
            assert!(lethal <= 1, "seed {seed} drew {lethal} lethal faults");
            for w in s.sorted_faults().windows(2) {
                assert!(
                    w[1].at_slot - w[0].at_slot >= dist.min_gap_slots,
                    "seed {seed}: faults too close"
                );
            }
        }
    }

    #[test]
    fn expectations_scale_with_injected_damage() {
        let quiet = Scenario::new("quiet", 1000);
        assert_eq!(Expectations::for_scenario(&quiet, true).max_dropped_ttis, 3);

        let crash =
            Scenario::new("crash", 2000).fault(900, FaultTarget::ActivePhy, FaultKind::PhyCrash);
        let exp = Expectations::for_scenario(&crash, true);
        assert_eq!(exp.max_dropped_ttis, 3);
        assert!(exp.expect_repair);
        let exp = Expectations::for_scenario(&crash, false);
        assert!(!exp.expect_repair);

        let storm = Scenario::new("storm", 2000).fault(
            900,
            FaultTarget::OrionL2,
            FaultKind::MigrationStorm { requests: 4 },
        );
        let exp = Expectations::for_scenario(&storm, false);
        assert!(exp.expect_repair, "planned migrations re-pair by swapping");

        let hang = Scenario::new("hang", 2000).fault(
            900,
            FaultTarget::ActivePhy,
            FaultKind::PhyHang { slots: 40 },
        );
        assert!(Expectations::for_scenario(&hang, true).max_dropped_ttis >= 3 + 8);
    }

    #[test]
    fn multi_cell_healthy_passes_per_cell_mode() {
        let tb = multi_cell_trace(300);
        let rep = check(&tb, &multi_exp());
        assert!(rep.ok(), "unexpected violations: {:?}", rep.violations);
        // The same trace under the legacy global oracle reads as split
        // brain — two PHYs per absolute slot — which is exactly why
        // multi-cell runs must set `initial_active`.
        let rep = check(&tb, &Expectations::default());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "one-active-phy"));
    }

    #[test]
    fn unowned_phy_serving_traffic_flagged() {
        let mut tb = multi_cell_trace(100);
        // PHY 9 belongs to no cell's active mapping; it delivering a
        // slot means the switch leaked uplink to a ghost replica.
        record_node(&mut tb, 44, 30, TraceEventKind::UlSlotProcessed, 44, 9);
        let rep = check(&tb, &multi_exp());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "one-active-phy" && v.detail.contains("PHY 9")));
    }

    #[test]
    fn per_cell_dropped_ttis_not_masked_by_other_cells() {
        let mut tb = TraceBuffer::new(1 << 16);
        for abs in (0..300u64).filter(|s| s % 5 == 4) {
            record_node(&mut tb, abs, 10, TraceEventKind::UlSlotProcessed, abs, 1);
            // Cell 1 blacks out for 60 slots (12 TTIs, budget 3); the
            // global measure would never see it because cell 0 keeps
            // delivering those absolute slots.
            if !(100..160).contains(&abs) {
                record_node(&mut tb, abs, 20, TraceEventKind::UlSlotProcessed, abs, 3);
            }
        }
        let rep = check(&tb, &multi_exp());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "dropped-ttis" && v.detail.contains("cell 1")));
        assert!(!rep
            .violations
            .iter()
            .any(|v| v.invariant == "dropped-ttis" && v.detail.contains("cell 0")));
    }

    #[test]
    fn per_cell_repair_checked_after_flip() {
        let mut tb = TraceBuffer::new(1 << 16);
        // Cell 0 fails over from PHY 1 to PHY 5 at slot 100; cell 1 is
        // untouched on PHY 3 throughout.
        for abs in (0..250u64).filter(|s| s % 5 == 4) {
            let cell0_phy = if abs < 100 { 1 } else { 5 };
            if !(95..105).contains(&abs) {
                record_node(
                    &mut tb,
                    abs,
                    10,
                    TraceEventKind::UlSlotProcessed,
                    abs,
                    cell0_phy,
                );
            }
            record_node(&mut tb, abs, 20, TraceEventKind::UlSlotProcessed, abs, 3);
        }
        record_node(&mut tb, 100, 5, TraceEventKind::MapFlip, 0, (1 << 16) | 5);
        // No null-FAPI keep-alive for cell 0 after the flip: not
        // re-paired, and attributed to cell 0 specifically.
        let rep = check(&tb, &multi_exp());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "eventual-repair" && v.detail.contains("cell 0")));
        // A keep-alive addressed to cell 0 after the settle window
        // clears it.
        record_node(&mut tb, 150, 11, TraceEventKind::NullFapiSent, 0, 150);
        let rep = check(&tb, &multi_exp());
        assert!(rep.ok(), "unexpected violations: {:?}", rep.violations);
    }

    #[test]
    fn pool_ledger_balanced_passes() {
        let mut tb = healthy_trace(300);
        record(&mut tb, 100, TraceEventKind::SpareRequested, 0, 1);
        record(&mut tb, 105, TraceEventKind::SpareGranted, 0, (5 << 16) | 1);
        record(&mut tb, 110, TraceEventKind::StandbyRepaired, 0, 5);
        record(&mut tb, 150, TraceEventKind::SpareReturned, 1, 2);
        let exp = Expectations {
            expect_pool: Some(2),
            ..Expectations::default()
        };
        let rep = check(&tb, &exp);
        assert!(rep.ok(), "unexpected violations: {:?}", rep.violations);
    }

    #[test]
    fn pool_ledger_count_mismatch_flagged() {
        let mut tb = healthy_trace(300);
        // Grant claims the pool still holds 2 spares; with an initial
        // size of 2 the ledger says 1 remain after the grant.
        record(&mut tb, 100, TraceEventKind::SpareGranted, 0, (5 << 16) | 2);
        record(&mut tb, 110, TraceEventKind::StandbyRepaired, 0, 5);
        let exp = Expectations {
            expect_pool: Some(2),
            ..Expectations::default()
        };
        let rep = check(&tb, &exp);
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "pool-accounting" && v.detail.contains("recorded pool size")));
    }

    #[test]
    fn over_returned_pool_flagged() {
        let mut tb = healthy_trace(300);
        record(&mut tb, 100, TraceEventKind::SpareReturned, 5, 3);
        let exp = Expectations {
            expect_pool: Some(2),
            ..Expectations::default()
        };
        let rep = check(&tb, &exp);
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "pool-accounting" && v.detail.contains("already-full")));
    }

    #[test]
    fn incomplete_recovery_chain_flagged() {
        // A request that is never granted (pool ran dry and stayed dry).
        let mut tb = healthy_trace(300);
        record(&mut tb, 100, TraceEventKind::SpareRequested, 2, 7);
        let exp = Expectations {
            expect_pool: Some(1),
            ..Expectations::default()
        };
        let rep = check(&tb, &exp);
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "pool-accounting" && v.detail.contains("granted only 0")));

        // A grant whose re-pairing never completed (Orion never
        // promoted the spare to secondary).
        let mut tb = healthy_trace(300);
        record(&mut tb, 100, TraceEventKind::SpareRequested, 2, 7);
        record(&mut tb, 105, TraceEventKind::SpareGranted, 2, (9 << 16) | 0);
        let rep = check(&tb, &exp);
        assert!(rep
            .violations
            .iter()
            .any(|v| v.invariant == "pool-accounting" && v.detail.contains("re-pairing")));
    }

    #[test]
    fn fault_display_roundtrips_key_facts() {
        let f = Fault {
            at_slot: 950,
            target: FaultTarget::ActivePhy,
            kind: FaultKind::PhyHang { slots: 25 },
        };
        let s = f.to_string();
        assert!(s.contains("950") && s.contains("active-phy") && s.contains("25"));
    }
}
