//! Structured, slot-aware event tracing.
//!
//! Every engine owns a bounded [`TraceBuffer`] into which nodes record
//! [`TraceEvent`]s through [`Ctx::trace`](crate::engine::Ctx::trace).
//! Each record carries the simulated time, the emitting node, the 5G NR
//! slot identity (`sfn.subframe.slot`) at which it happened, a
//! [`TraceEventKind`] naming the Slingshot lifecycle step, and two
//! free-form `u64` payload words whose meaning is per-kind (documented on
//! each variant).
//!
//! Because the simulator is single-threaded and fully seeded, the trace
//! is itself a determinism oracle: two runs with the same seed must
//! produce byte-identical traces ([`TraceBuffer::to_bytes`] /
//! [`TraceBuffer::hash`]), and the integration tests assert exactly that.
//!
//! The buffer is a ring: once `capacity` events have been recorded the
//! oldest are overwritten and `dropped_oldest` counts the evictions, so
//! tracing never grows heap proportionally to run length.
//!
//! Exporters: [`TraceBuffer::write_chrome_trace`] emits Chrome
//! `trace_event` JSON loadable in `chrome://tracing` or Perfetto;
//! [`TraceBuffer::write_summary`] renders a human-readable timeline.
//! Derived measures over a trace — failure-detection latency and
//! delivered-TTI gaps (blackout) — live here too, so tests assert the
//! paper's headline numbers from the trace rather than ad-hoc counters.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};

use crate::engine::NodeId;
use crate::time::{Nanos, SlotClock, SlotId};

/// What happened. Variants map 1:1 to steps of the Slingshot failure
/// story (§5 of the paper) plus generic engine lifecycle events.
///
/// The `a`/`b` payload convention for each variant is documented inline;
/// unused words are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum TraceEventKind {
    /// A downlink fronthaul packet (the implicit heartbeat) reset a
    /// PHY's failure counter. Coalesced to at most one event per
    /// (PHY, slot). `a` = PHY id, `b` = absolute slot.
    HeartbeatSeen = 1,
    /// The in-switch detector started covering a PHY. `a` = PHY id.
    DetectorArmed = 2,
    /// Detector progress: a PHY's counter crossed half of the
    /// saturation threshold `n` without a heartbeat (emitted once per
    /// outage, not per tick). `a` = PHY id, `b` = counter value.
    DetectorTick = 3,
    /// A PHY's counter reached `n` ticks with no heartbeat: failure
    /// declared. `a` = PHY id, `b` = arrival time (ns) of the last
    /// heartbeat from that PHY, so detection latency = `at - b`.
    DetectorSaturated = 4,
    /// The switch emitted a FailureNotify control packet.
    /// `a` = failed PHY id, `b` = subscriber index.
    FailureNotifySent = 5,
    /// A node received a FailureNotify. `a` = failed PHY id.
    FailureNotifyReceived = 6,
    /// A `migrate_on_slot` register write was armed in the switch.
    /// `a` = RU id, `b` = packed (dest PHY << 16) | slot scalar.
    MigrateArmed = 7,
    /// The RU→PHY steering map changed. `a` = RU id, `b` = packed
    /// (old PHY << 16) | new PHY.
    MapFlip = 8,
    /// A downlink packet from a non-active PHY was filtered (duplicate
    /// suppression). `a` = sending PHY id, `b` = absolute slot.
    DlFiltered = 9,
    /// Orion issued a null FAPI response to mask a missing PHY reply.
    /// `a` = RU id, `b` = absolute slot.
    NullFapiSent = 10,
    /// Orion dropped a duplicate response already answered by the
    /// other PHY. `a` = PHY id, `b` = absolute slot.
    DupResponseDropped = 11,
    /// A late response from a pipelined slot was drained to the L2
    /// after failover. `a` = PHY id, `b` = absolute slot.
    PipelinedSlotDrained = 12,
    /// A node was killed (fail-stop crash). `a` = node id.
    NodeKilled = 13,
    /// A node was revived. `a` = node id.
    NodeRevived = 14,
    /// The L2 reset HARQ/RLC state for a UE. `a` = RNTI.
    HarqReset = 15,
    /// A PHY missed its slot deadline (no FAPI download in time).
    /// `a` = consecutive missing streak, `b` = absolute slot.
    SlotDeadlineMiss = 16,
    /// A PHY finished uplink processing for a slot and delivered the
    /// TTI. `a` = absolute slot, `b` = PHY server node id.
    UlSlotProcessed = 17,
    /// Orion accepted a FAPI uplink response from a PHY and forwarded it
    /// to L2. `a` = source PHY id, `b` = absolute slot. The chaos oracle
    /// uses this to assert that at most one PHY's response per slot ever
    /// reaches L2 (§6.3's exactly-once delivery across failover).
    FapiToL2 = 18,
    /// An L2-side Orion exhausted its local standbys after a failover
    /// and asked the recovery orchestrator for a spare from the shared
    /// pool. `a` = RU id, `b` = failed (drained) PHY id.
    SpareRequested = 19,
    /// The recovery orchestrator granted a pooled spare to a cell.
    /// `a` = RU id, `b` = `(phy_id << 16) | pool_size_after_grant`.
    SpareGranted = 20,
    /// A drained ex-primary finished its scrub cycle and rejoined the
    /// shared spare pool. `a` = PHY id, `b` = pool size after return.
    SpareReturned = 21,
    /// An L2-side Orion installed a granted spare as the cell's new
    /// standby at a slot boundary and replayed the duplicated init-FAPI
    /// to it (§6.3) — the cell is re-paired. `a` = RU id, `b` = PHY id.
    StandbyRepaired = 22,
}

impl TraceEventKind {
    /// Stable display name (used in summaries and Chrome traces).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEventKind::HeartbeatSeen => "heartbeat_seen",
            TraceEventKind::DetectorArmed => "detector_armed",
            TraceEventKind::DetectorTick => "detector_tick",
            TraceEventKind::DetectorSaturated => "detector_saturated",
            TraceEventKind::FailureNotifySent => "failure_notify_sent",
            TraceEventKind::FailureNotifyReceived => "failure_notify_received",
            TraceEventKind::MigrateArmed => "migrate_armed",
            TraceEventKind::MapFlip => "map_flip",
            TraceEventKind::DlFiltered => "dl_filtered",
            TraceEventKind::NullFapiSent => "null_fapi_sent",
            TraceEventKind::DupResponseDropped => "dup_response_dropped",
            TraceEventKind::PipelinedSlotDrained => "pipelined_slot_drained",
            TraceEventKind::NodeKilled => "node_killed",
            TraceEventKind::NodeRevived => "node_revived",
            TraceEventKind::HarqReset => "harq_reset",
            TraceEventKind::SlotDeadlineMiss => "slot_deadline_miss",
            TraceEventKind::UlSlotProcessed => "ul_slot_processed",
            TraceEventKind::FapiToL2 => "fapi_to_l2",
            TraceEventKind::SpareRequested => "spare_requested",
            TraceEventKind::SpareGranted => "spare_granted",
            TraceEventKind::SpareReturned => "spare_returned",
            TraceEventKind::StandbyRepaired => "standby_repaired",
        }
    }

    /// Perfetto category, used to group related rows when filtering.
    pub fn category(self) -> &'static str {
        match self {
            TraceEventKind::HeartbeatSeen
            | TraceEventKind::DetectorArmed
            | TraceEventKind::DetectorTick
            | TraceEventKind::DetectorSaturated
            | TraceEventKind::FailureNotifySent => "detector",
            TraceEventKind::FailureNotifyReceived
            | TraceEventKind::NullFapiSent
            | TraceEventKind::DupResponseDropped
            | TraceEventKind::PipelinedSlotDrained => "orion",
            TraceEventKind::MigrateArmed | TraceEventKind::MapFlip | TraceEventKind::DlFiltered => {
                "switch"
            }
            TraceEventKind::NodeKilled | TraceEventKind::NodeRevived => "lifecycle",
            TraceEventKind::SpareRequested
            | TraceEventKind::SpareGranted
            | TraceEventKind::SpareReturned
            | TraceEventKind::StandbyRepaired => "recovery",
            TraceEventKind::FapiToL2 => "orion",
            TraceEventKind::HarqReset
            | TraceEventKind::SlotDeadlineMiss
            | TraceEventKind::UlSlotProcessed => "ran",
        }
    }
}

/// One trace record. 40 bytes, `Copy`, written into the engine's ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: Nanos,
    /// Node that emitted it ([`NodeId::EXTERNAL`] for harness actions).
    pub node: NodeId,
    /// NR slot identity at `at` (or carried in the triggering packet).
    pub slot: SlotId,
    pub kind: TraceEventKind,
    /// First payload word; meaning is per-kind (see [`TraceEventKind`]).
    pub a: u64,
    /// Second payload word; meaning is per-kind.
    pub b: u64,
}

impl TraceEvent {
    /// Deterministic 40-byte little-endian encoding, the unit of
    /// [`TraceBuffer::to_bytes`] and [`TraceBuffer::hash`].
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.at.0.to_le_bytes());
        out.extend_from_slice(&(self.node.0 as u64).to_le_bytes());
        out.extend_from_slice(&self.slot.sfn.to_le_bytes());
        out.push(self.slot.subframe);
        out.push(self.slot.slot);
        out.extend_from_slice(&(self.kind as u16).to_le_bytes());
        out.extend_from_slice(&[0u8; 2]); // padding for alignment/stability
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
    }
}

/// Default ring capacity: enough for every lifecycle event of a
/// multi-second failover run (~25k events) with a wide margin, while
/// bounding memory at ~10 MB even for pathological instrumentation.
pub const DEFAULT_TRACE_CAPACITY: usize = 262_144;

/// Bounded ring buffer of [`TraceEvent`]s owned by the engine.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    /// Events evicted because the ring was full.
    dropped_oldest: u64,
    /// Total events ever recorded (including evicted ones).
    total: u64,
    /// Clock used to stamp events with their slot identity.
    clock: SlotClock,
    /// Bitmask over [`TraceEventKind`] discriminants; a record whose
    /// kind bit is clear is silently ignored. `!0` (the default)
    /// records everything.
    kind_mask: u64,
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceBuffer {
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped_oldest: 0,
            total: 0,
            clock: SlotClock::new(Nanos::ZERO),
            kind_mask: !0,
        }
    }

    /// Restrict recording to the given kinds; anything else is dropped
    /// at the record call, before it can occupy ring space. Off by
    /// default (everything is recorded). Long-horizon harnesses that
    /// only consume the failover/delivery subset use this so a
    /// million-slot run fits in a modest ring instead of needing
    /// gigabytes — note that per-kind helpers over other kinds will see
    /// nothing, and the byte stream/hash reflect only the kept kinds.
    pub fn set_kind_filter(&mut self, kinds: &[TraceEventKind]) {
        self.kind_mask = kinds.iter().fold(0u64, |m, k| m | 1u64 << (*k as u16));
    }

    /// Remove any kind filter; subsequent records keep everything.
    pub fn clear_kind_filter(&mut self) {
        self.kind_mask = !0;
    }

    /// Change the ring capacity, evicting oldest events if shrinking.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.events.len() > self.capacity {
            self.events.pop_front();
            self.dropped_oldest += 1;
        }
    }

    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// Record an event whose slot is derived from `at` via the engine's
    /// slot clock.
    pub fn record(&mut self, at: Nanos, node: NodeId, kind: TraceEventKind, a: u64, b: u64) {
        let slot = self.clock.slot_id(at);
        self.record_at_slot(at, node, slot, kind, a, b);
    }

    /// Record an event with an explicit slot identity (for events whose
    /// slot is carried in a packet header rather than derived from the
    /// arrival time).
    pub fn record_at_slot(
        &mut self,
        at: Nanos,
        node: NodeId,
        slot: SlotId,
        kind: TraceEventKind,
        a: u64,
        b: u64,
    ) {
        if self.kind_mask & (1u64 << (kind as u16)) == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped_oldest += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            node,
            slot,
            kind,
            a,
            b,
        });
        self.total += 1;
    }

    /// A staging buffer sharing this buffer's clock and kind filter —
    /// what each engine shard records into between slot barriers before
    /// its events merge back here. Staging rings get the same capacity;
    /// they are drained every barrier, so eviction never fires in
    /// practice.
    pub fn fork_staging(&self) -> TraceBuffer {
        TraceBuffer {
            events: std::collections::VecDeque::new(),
            capacity: self.capacity,
            dropped_oldest: 0,
            total: 0,
            clock: self.clock,
            kind_mask: self.kind_mask,
        }
    }

    /// Copy another buffer's kind filter (keeps staging buffers in step
    /// with a filter installed on the global buffer mid-run).
    pub fn sync_filter_from(&mut self, other: &TraceBuffer) {
        self.kind_mask = other.kind_mask;
    }

    /// Take every buffered event out, preserving record order. The
    /// `total`/`dropped_oldest` accounting is *not* reset: a staging
    /// buffer's totals keep accumulating across drains so shard runs
    /// report the same totals as single-loop runs.
    pub fn drain_events(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }

    /// Append an already-built event (from a shard's staging buffer),
    /// bypassing the kind filter — staging already applied it — but
    /// honoring ring capacity.
    pub fn append_event(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped_oldest += 1;
        }
        self.events.push_back(ev);
        self.total += 1;
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded, including ones evicted from the ring.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events evicted because the ring was full (0 in a healthy run).
    pub fn dropped_oldest(&self) -> u64 {
        self.dropped_oldest
    }

    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events of one kind, in record order.
    pub fn of_kind(&self, kind: TraceEventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped_oldest = 0;
        self.total = 0;
    }

    /// Deterministic binary encoding of the whole trace. Two same-seed
    /// runs must produce byte-identical output.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.events.len() * 40);
        for ev in &self.events {
            ev.encode(&mut out);
        }
        out
    }

    /// FNV-1a hash over [`TraceBuffer::to_bytes`]; the cheap equality
    /// check used by determinism tests.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Write Chrome `trace_event` JSON (the "JSON Array Format" plus
    /// process/thread metadata), loadable in `chrome://tracing` and
    /// Perfetto. Each node becomes a thread named after
    /// `node_names[id]`; events are instant events with their payload
    /// words and slot identity in `args`.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W, node_names: &[String]) -> io::Result<()> {
        writeln!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
        writeln!(
            w,
            " {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"slingshot-sim\"}}}}"
        )?;
        let mut tids_seen: BTreeMap<usize, &str> = BTreeMap::new();
        for ev in &self.events {
            let tid = tid_for(ev.node);
            tids_seen.entry(tid).or_insert_with(|| {
                node_names.get(ev.node.0).map(String::as_str).unwrap_or(
                    if ev.node == NodeId::EXTERNAL {
                        "harness"
                    } else {
                        "?"
                    },
                )
            });
        }
        for (tid, name) in &tids_seen {
            writeln!(
                w,
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            )?;
        }
        for ev in &self.events {
            // ts is microseconds; keep nanosecond precision in the
            // fraction so relative timestamps stay exact.
            let us = ev.at.0 / 1_000;
            let frac = ev.at.0 % 1_000;
            writeln!(
                w,
                ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{us}.{frac:03},\"pid\":0,\"tid\":{},\
                 \"args\":{{\"a\":{},\"b\":{},\"slot\":\"{}\"}}}}",
                ev.kind.as_str(),
                ev.kind.category(),
                tid_for(ev.node),
                ev.a,
                ev.b,
                ev.slot,
            )?;
        }
        writeln!(w, "]}}")
    }

    /// Human-readable timeline, one line per event.
    pub fn write_summary<W: Write>(&self, w: &mut W, node_names: &[String]) -> io::Result<()> {
        writeln!(
            w,
            "trace: {} events ({} recorded, {} evicted)",
            self.events.len(),
            self.total,
            self.dropped_oldest
        )?;
        if self.dropped_oldest > 0 {
            writeln!(
                w,
                "WARNING: ring wrapped — the oldest {} events were evicted; \
                 this summary (and anything derived from it) covers a \
                 TRUNCATED window of the run",
                self.dropped_oldest
            )?;
        }
        for ev in &self.events {
            let name = node_names.get(ev.node.0).map(String::as_str).unwrap_or(
                if ev.node == NodeId::EXTERNAL {
                    "harness"
                } else {
                    "?"
                },
            );
            writeln!(
                w,
                "{:>14}  slot {:>9}  {:<12} {:<24} a={} b={}",
                format!("{}", ev.at),
                format!("{}", ev.slot),
                name,
                ev.kind.as_str(),
                ev.a,
                ev.b
            )?;
        }
        Ok(())
    }
}

/// Chrome trace thread id for a node (EXTERNAL gets a high sentinel).
fn tid_for(node: NodeId) -> usize {
    if node == NodeId::EXTERNAL {
        9_999
    } else {
        node.0 + 1
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A failure detection measured from the trace: the saturation event
/// plus the latency back to the last heartbeat it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// PHY whose failure was detected.
    pub phy: u64,
    /// Time the detector saturated (failure declared).
    pub at: Nanos,
    /// Arrival time of the last heartbeat from that PHY.
    pub last_heartbeat: Nanos,
}

impl Detection {
    /// Detection latency as the paper defines it: declaration time
    /// minus last heartbeat arrival (§5.2; ≤ T = 450 µs by design).
    pub fn latency(&self) -> Nanos {
        self.at.saturating_sub(self.last_heartbeat)
    }
}

/// Extract every failure detection from a trace. `DetectorSaturated`
/// events carry the last-heartbeat arrival in their `b` payload.
pub fn detections<'a, I: IntoIterator<Item = &'a TraceEvent>>(events: I) -> Vec<Detection> {
    events
        .into_iter()
        .filter(|e| e.kind == TraceEventKind::DetectorSaturated)
        .map(|e| Detection {
            phy: e.a,
            at: e.at,
            last_heartbeat: Nanos(e.b),
        })
        .collect()
}

/// Absolute slots whose TTIs were delivered (`UlSlotProcessed`),
/// deduplicated and sorted — the input to blackout/dropped-TTI measures.
pub fn delivered_ul_slots<'a, I: IntoIterator<Item = &'a TraceEvent>>(events: I) -> Vec<u64> {
    let mut slots: Vec<u64> = events
        .into_iter()
        .filter(|e| e.kind == TraceEventKind::UlSlotProcessed)
        .map(|e| e.a)
        .collect();
    slots.sort_unstable();
    slots.dedup();
    slots
}

/// Dropped TTIs per the paper's §8.2 measure: among the uplink slots the
/// TDD pattern scheduled between the first and last delivered slot
/// (stride = TDD cycle length), how many were never delivered.
pub fn dropped_ttis(delivered: &[u64], stride: u64) -> u64 {
    match delivered {
        [] | [_] => 0,
        [first, .., last] => {
            let expected = (last - first) / stride + 1;
            expected.saturating_sub(delivered.len() as u64)
        }
    }
}

/// Longest gap between consecutive delivered TTIs, in slots — the
/// trace-derived blackout measure (0 means no gap beyond the stride).
pub fn max_tti_gap_slots(delivered: &[u64], stride: u64) -> u64 {
    delivered
        .windows(2)
        .map(|w| (w[1] - w[0]).saturating_sub(stride) / stride)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: TraceEventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            at: Nanos(at),
            node: NodeId(1),
            slot: SlotId::ZERO,
            kind,
            a,
            b,
        }
    }

    #[test]
    fn ring_bounds_memory_and_counts_evictions() {
        let mut t = TraceBuffer::new(4);
        for i in 0..10 {
            t.record(Nanos(i), NodeId(0), TraceEventKind::HeartbeatSeen, i, 0);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_recorded(), 10);
        assert_eq!(t.dropped_oldest(), 6);
        let first = t.iter().next().unwrap();
        assert_eq!(first.a, 6, "oldest events evicted first");
    }

    #[test]
    fn summary_warns_when_ring_wrapped() {
        let mut t = TraceBuffer::new(4);
        for i in 0..3 {
            t.record(Nanos(i), NodeId(0), TraceEventKind::HeartbeatSeen, i, 0);
        }
        let mut out = Vec::new();
        t.write_summary(&mut out, &[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("WARNING"), "no warning before eviction");
        for i in 3..10 {
            t.record(Nanos(i), NodeId(0), TraceEventKind::HeartbeatSeen, i, 0);
        }
        let mut out = Vec::new();
        t.write_summary(&mut out, &[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("WARNING"), "wrapped ring must warn: {text}");
        assert!(text.contains("TRUNCATED"));
    }

    #[test]
    fn kind_filter_drops_unlisted_kinds_without_counting_them() {
        let mut t = TraceBuffer::new(16);
        t.set_kind_filter(&[TraceEventKind::MapFlip, TraceEventKind::UlSlotProcessed]);
        t.record(Nanos(1), NodeId(0), TraceEventKind::HeartbeatSeen, 1, 0);
        t.record(Nanos(2), NodeId(0), TraceEventKind::MapFlip, 0, 3);
        t.record(Nanos(3), NodeId(0), TraceEventKind::UlSlotProcessed, 5, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_recorded(), 2, "filtered events are not 'recorded'");
        assert_eq!(t.dropped_oldest(), 0, "filtering is not eviction");
        assert_eq!(t.of_kind(TraceEventKind::HeartbeatSeen).count(), 0);
        t.clear_kind_filter();
        t.record(Nanos(4), NodeId(0), TraceEventKind::HeartbeatSeen, 1, 0);
        assert_eq!(t.of_kind(TraceEventKind::HeartbeatSeen).count(), 1);
    }

    #[test]
    fn encoding_is_stable_and_hash_discriminates() {
        let mut t1 = TraceBuffer::new(16);
        let mut t2 = TraceBuffer::new(16);
        for t in [&mut t1, &mut t2] {
            t.record(
                Nanos(500_000),
                NodeId(3),
                TraceEventKind::MapFlip,
                0,
                (1 << 16) | 2,
            );
        }
        assert_eq!(t1.to_bytes(), t2.to_bytes());
        assert_eq!(t1.hash(), t2.hash());
        t2.record(Nanos(600_000), NodeId(3), TraceEventKind::DlFiltered, 1, 0);
        assert_ne!(t1.hash(), t2.hash());
        assert_eq!(t1.to_bytes().len(), 40);
    }

    #[test]
    fn slot_stamped_from_clock() {
        let mut t = TraceBuffer::default();
        // 500 µs slots: t=1.25 ms is absolute slot 2 = sfn 0, subframe 1, slot 0.
        t.record(
            Nanos(1_250_000),
            NodeId(0),
            TraceEventKind::HeartbeatSeen,
            0,
            0,
        );
        let e = t.iter().next().unwrap();
        assert_eq!((e.slot.sfn, e.slot.subframe, e.slot.slot), (0, 1, 0));
    }

    #[test]
    fn detection_latency_from_trace() {
        let events = [
            ev(100_000, TraceEventKind::HeartbeatSeen, 1, 0),
            ev(550_000, TraceEventKind::DetectorSaturated, 1, 100_000),
        ];
        let d = detections(events.iter());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].latency(), Nanos(450_000));
        assert_eq!(d[0].phy, 1);
    }

    #[test]
    fn dropped_tti_math() {
        // DDDSU: UL slots every 5. Delivered 0,5,10,25,30 → 15,20 missing.
        let delivered = [0, 5, 10, 25, 30];
        assert_eq!(dropped_ttis(&delivered, 5), 2);
        assert_eq!(max_tti_gap_slots(&delivered, 5), 2);
        assert_eq!(dropped_ttis(&[], 5), 0);
        assert_eq!(dropped_ttis(&[7], 5), 0);
    }

    #[test]
    fn chrome_trace_is_wellformed_json_shape() {
        let mut t = TraceBuffer::new(16);
        t.record(Nanos(1_000), NodeId(0), TraceEventKind::NodeKilled, 0, 0);
        t.record(Nanos(2_500), NodeId(1), TraceEventKind::MapFlip, 0, 2);
        let mut out = Vec::new();
        t.write_chrome_trace(&mut out, &["switch".into(), "orion".into()])
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("{\"displayTimeUnit\""));
        assert!(s.trim_end().ends_with("]}"));
        assert!(s.contains("\"name\":\"map_flip\""));
        assert!(s.contains("\"ts\":1.000"));
        assert!(s.contains("\"ts\":2.500"));
        assert!(s.contains("\"name\":\"orion\""));
        // Balanced braces (cheap well-formedness check without a parser).
        let open = s.matches('{').count();
        let close = s.matches('}').count();
        assert_eq!(open, close);
    }
}
