//! Bounded-memory metrics: counters, gauges, and log-bucketed
//! histograms, organized in a per-engine [`MetricsRegistry`].
//!
//! The registry replaces ad-hoc raw-sample collection on high-volume
//! paths: a [`LogHistogram`] holds a fixed ~8 KB bucket array no matter
//! how many samples are recorded, so snapshotting metrics mid-run adds
//! no heap growth proportional to sample count (an explicit acceptance
//! criterion for this subsystem; `Sampler` keeps every sample and is
//! reserved for low-volume paths that need exact percentiles).
//!
//! Metrics are keyed by `(scope, name)` where scope is typically a node
//! name (`"switch0"`, `"orion-phy"`) or a link (`"link:ru->switch"`).
//! Storage is `BTreeMap`, so iteration — and therefore every exporter —
//! is deterministic. Exporters: [`MetricsRegistry::to_text`] for humans,
//! [`MetricsRegistry::to_json`] for machine-readable `BENCH_*.json`
//! artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of linear sub-buckets per power-of-two major bucket, as a
/// shift: 2^4 = 16 sub-buckets ⇒ relative quantization error ≤ 1/16.
const SUB_BITS: u32 = 4;
const SUBS: u64 = 1 << SUB_BITS;
/// Bucket count: values 0..16 map to exact buckets 0..16; each major
/// power 4..=63 contributes 16 sub-buckets.
const BUCKETS: usize = (SUBS + (64 - SUB_BITS as u64) * SUBS) as usize;

/// Fixed-size histogram with logarithmic major buckets and 16 linear
/// sub-buckets each: exact below 32, ≤ 6.25% relative error above.
#[derive(Clone)]
pub struct LogHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let major = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
        let minor = (v >> (major - SUB_BITS)) & (SUBS - 1);
        ((major - SUB_BITS + 1) as u64 * SUBS + minor) as usize
    }
}

/// Inclusive upper bound of a bucket (what percentile queries report:
/// a conservative over-estimate, never an under-estimate).
fn bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBS {
        idx
    } else {
        let major = (idx / SUBS - 1) + SUB_BITS as u64;
        let minor = idx % SUBS;
        let lower = (1u64 << major) | (minor << (major - SUB_BITS as u64));
        // Parenthesized so the top bucket (upper == u64::MAX) does not
        // overflow in `lower + width` before the subtraction.
        lower + ((1u64 << (major - SUB_BITS as u64)) - 1)
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Nearest-rank percentile, reported as the containing bucket's
    /// upper bound (clamped to the observed max): conservative for
    /// latency SLO checks. `p` in (0, 100].
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    pub fn p999(&self) -> Option<u64> {
        self.percentile(99.9)
    }

    pub fn p99999(&self) -> Option<u64> {
        self.percentile(99.999)
    }

    /// Merge another histogram into this one (used when aggregating
    /// per-node histograms into a deployment-wide view).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A point-in-time summary of one histogram (fixed size, no samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
    pub p99999: u64,
}

/// Registry of named metrics scoped by component.
///
/// All maps are `BTreeMap` keyed by `(scope, name)`, so iteration order
/// — and every exporter built on it — is deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), i64>,
    histograms: BTreeMap<(String, String), LogHistogram>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter, creating it at zero if absent.
    pub fn inc(&mut self, scope: &str, name: &str, delta: u64) {
        if let Some(c) = self
            .counters
            .get_mut(&(scope.to_string(), name.to_string()))
        {
            *c += delta;
        } else {
            self.counters
                .insert((scope.to_string(), name.to_string()), delta);
        }
    }

    /// Set a counter to an absolute value (for publishing externally
    /// maintained totals, e.g. link stats, idempotently).
    pub fn set_counter(&mut self, scope: &str, name: &str, value: u64) {
        self.counters
            .insert((scope.to_string(), name.to_string()), value);
    }

    pub fn counter(&self, scope: &str, name: &str) -> u64 {
        self.counters
            .get(&(scope.to_string(), name.to_string()))
            .copied()
            .unwrap_or(0)
    }

    pub fn set_gauge(&mut self, scope: &str, name: &str, value: i64) {
        self.gauges
            .insert((scope.to_string(), name.to_string()), value);
    }

    pub fn gauge(&self, scope: &str, name: &str) -> Option<i64> {
        self.gauges
            .get(&(scope.to_string(), name.to_string()))
            .copied()
    }

    /// Record a sample into a histogram, creating it if absent.
    pub fn observe(&mut self, scope: &str, name: &str, value: u64) {
        self.histograms
            .entry((scope.to_string(), name.to_string()))
            .or_default()
            .record(value);
    }

    pub fn histogram(&self, scope: &str, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(&(scope.to_string(), name.to_string()))
    }

    /// Mutable handle to a histogram, creating it if absent (for hot
    /// paths that want to avoid the per-sample key lookup).
    pub fn histogram_mut(&mut self, scope: &str, name: &str) -> &mut LogHistogram {
        self.histograms
            .entry((scope.to_string(), name.to_string()))
            .or_default()
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters
            .iter()
            .map(|((s, n), v)| (s.as_str(), n.as_str(), *v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, i64)> {
        self.gauges
            .iter()
            .map(|((s, n), v)| (s.as_str(), n.as_str(), *v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &str, &LogHistogram)> {
        self.histograms
            .iter()
            .map(|((s, n), h)| (s.as_str(), n.as_str(), h))
    }

    /// Fixed-size summaries of every histogram (no sample-proportional
    /// allocation: one `HistogramSummary` per metric).
    pub fn histogram_summaries(&self) -> Vec<(String, String, HistogramSummary)> {
        self.histograms
            .iter()
            .filter(|(_, h)| !h.is_empty())
            .map(|((s, n), h)| {
                (
                    s.clone(),
                    n.clone(),
                    HistogramSummary {
                        count: h.count(),
                        min: h.min().unwrap_or(0),
                        max: h.max().unwrap_or(0),
                        mean: h.mean().unwrap_or(0.0),
                        p50: h.p50().unwrap_or(0),
                        p99: h.p99().unwrap_or(0),
                        p999: h.p999().unwrap_or(0),
                        p99999: h.p99999().unwrap_or(0),
                    },
                )
            })
            .collect()
    }

    /// Merge another registry into this one: counters add, gauges take
    /// the other's value, histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for ((s, n), v) in &other.counters {
            *self.counters.entry((s.clone(), n.clone())).or_insert(0) += v;
        }
        for ((s, n), v) in &other.gauges {
            self.gauges.insert((s.clone(), n.clone()), *v);
        }
        for ((s, n), h) in &other.histograms {
            self.histograms
                .entry((s.clone(), n.clone()))
                .or_default()
                .merge(h);
        }
    }

    /// Human-readable dump, grouped by scope, deterministic order.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut last_scope: Option<&str> = None;
        let write_scope = |out: &mut String, scope: &str, last: &mut Option<&str>| {
            if *last != Some(scope) {
                let _ = writeln!(out, "[{scope}]");
            }
        };
        for ((scope, name), v) in &self.counters {
            write_scope(&mut out, scope, &mut last_scope);
            last_scope = Some(scope);
            let _ = writeln!(out, "  {name} = {v}");
        }
        for ((scope, name), v) in &self.gauges {
            write_scope(&mut out, scope, &mut last_scope);
            last_scope = Some(scope);
            let _ = writeln!(out, "  {name} = {v} (gauge)");
        }
        for ((scope, name), h) in &self.histograms {
            write_scope(&mut out, scope, &mut last_scope);
            last_scope = Some(scope);
            if h.is_empty() {
                let _ = writeln!(out, "  {name}: empty histogram");
            } else {
                let _ = writeln!(
                    out,
                    "  {name}: n={} min={} p50={} p99={} p99.9={} p99.999={} max={} mean={:.1}",
                    h.count(),
                    h.min().unwrap_or(0),
                    h.p50().unwrap_or(0),
                    h.p99().unwrap_or(0),
                    h.p999().unwrap_or(0),
                    h.p99999().unwrap_or(0),
                    h.max().unwrap_or(0),
                    h.mean().unwrap_or(0.0),
                );
            }
        }
        out
    }

    /// Machine-readable JSON, deterministic key order:
    /// `{"counters":{"scope/name":v,...},"gauges":{...},"histograms":
    /// {"scope/name":{"count":..,"min":..,...},...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        for (i, ((scope, name), v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}/{}\":{v}", escape(scope), escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, ((scope, name), v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}/{}\":{v}", escape(scope), escape(name));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for ((scope, name), h) in &self.histograms {
            if h.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}/{}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\
                 \"p50\":{},\"p99\":{},\"p999\":{},\"p99999\":{}}}",
                escape(scope),
                escape(name),
                h.count(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.mean().unwrap_or(0.0),
                h.p50().unwrap_or(0),
                h.p99().unwrap_or(0),
                h.p999().unwrap_or(0),
                h.p99999().unwrap_or(0),
            );
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition (format 0.0.4), deterministic order.
    ///
    /// Scopes become a `scope` label so each metric name is one family
    /// with exactly one `# TYPE` line. Histograms export as summaries
    /// (`quantile` label plus `_sum`/`_count`) rather than cumulative
    /// buckets: the log-bucket boundaries are an implementation detail
    /// and the registry already keeps exact count/mean/percentiles.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(s: &str) -> String {
            let mut name: String = s
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                name.insert(0, '_');
            }
            name
        }
        let mut out = String::new();
        let mut counters: BTreeMap<String, Vec<(&str, u64)>> = BTreeMap::new();
        for ((scope, name), v) in &self.counters {
            counters
                .entry(sanitize(name))
                .or_default()
                .push((scope, *v));
        }
        for (name, samples) in &counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            for (scope, v) in samples {
                let _ = writeln!(out, "{name}{{scope=\"{}\"}} {v}", escape(scope));
            }
        }
        let mut gauges: BTreeMap<String, Vec<(&str, i64)>> = BTreeMap::new();
        for ((scope, name), v) in &self.gauges {
            gauges.entry(sanitize(name)).or_default().push((scope, *v));
        }
        for (name, samples) in &gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (scope, v) in samples {
                let _ = writeln!(out, "{name}{{scope=\"{}\"}} {v}", escape(scope));
            }
        }
        let mut hists: BTreeMap<String, Vec<(&str, &LogHistogram)>> = BTreeMap::new();
        for ((scope, name), h) in &self.histograms {
            if h.is_empty() {
                continue;
            }
            hists.entry(sanitize(name)).or_default().push((scope, h));
        }
        for (name, samples) in &hists {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (scope, h) in samples {
                let scope = escape(scope);
                for (q, v) in [
                    ("0.5", h.p50()),
                    ("0.99", h.p99()),
                    ("0.999", h.p999()),
                    ("0.99999", h.p99999()),
                ] {
                    let _ = writeln!(
                        out,
                        "{name}{{scope=\"{scope}\",quantile=\"{q}\"}} {}",
                        v.unwrap_or(0)
                    );
                }
                let sum = h.mean().unwrap_or(0.0) * h.count() as f64;
                let _ = writeln!(out, "{name}_sum{{scope=\"{scope}\"}} {sum:.0}");
                let _ = writeln!(out, "{name}_count{{scope=\"{scope}\"}} {}", h.count());
            }
        }
        out
    }
}

/// Where an [`Instrument`] publishes its metrics. The registry is the
/// production sink; tests can capture with their own impl.
///
/// Publication uses *set* semantics (counters are absolute totals, not
/// deltas), so publishing twice is idempotent — nodes keep their own
/// live tallies and snapshot them through this interface.
pub trait InstrumentSink {
    fn counter(&mut self, scope: &str, name: &str, value: u64);
    fn gauge(&mut self, scope: &str, name: &str, value: i64);
    fn histogram(&mut self, scope: &str, name: &str, h: &LogHistogram);
}

impl InstrumentSink for MetricsRegistry {
    fn counter(&mut self, scope: &str, name: &str, value: u64) {
        self.set_counter(scope, name, value);
    }

    fn gauge(&mut self, scope: &str, name: &str, value: i64) {
        self.set_gauge(scope, name, value);
    }

    fn histogram(&mut self, scope: &str, name: &str, h: &LogHistogram) {
        // Replace rather than merge: publishing is a snapshot.
        *self.histogram_mut(scope, name) = h.clone();
    }
}

/// One entry point for a node to publish everything it measures.
///
/// PR 1 threaded three parallel idioms through the deployment
/// (`set_counter` loops, gauge pokes, `histogram_mut` merges) — one
/// hand-written block per node type. Implementing `Instrument` moves
/// that knowledge into the node itself: the deployment just walks its
/// nodes and calls [`Instrument::instrument`] with the node's scope.
pub trait Instrument {
    /// Publish all counters/gauges/histograms under `scope`.
    fn instrument(&self, scope: &str, sink: &mut dyn InstrumentSink);
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_32() {
        for v in 0..32 {
            let idx = bucket_index(v);
            assert_eq!(bucket_upper(idx), v, "value {v} should be exact");
        }
    }

    #[test]
    fn bucket_error_bounded() {
        for v in [33, 100, 1_000, 65_535, 1 << 20, u64::MAX / 2, u64::MAX] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v, "upper bound must not underestimate {v}");
            // Relative over-estimate ≤ 1/16.
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 1.0 / 16.0 + 1e-12, "v={v} upper={upper} err={err}");
        }
    }

    #[test]
    fn buckets_are_monotone_and_in_range() {
        let mut prev = None;
        for v in (0..1_000_000u64).step_by(997) {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS);
            if let Some(p) = prev {
                assert!(idx >= p, "bucket index must be monotone in value");
            }
            prev = Some(idx);
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn histogram_percentiles_conservative() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.p50().unwrap();
        assert!((500..=532).contains(&p50), "p50={p50}");
        let p99 = h.p99().unwrap();
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.p99999(), Some(1000));
        let mean = h.mean().unwrap();
        assert!((mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_memory_is_flat() {
        // The whole point: recording a million samples allocates nothing
        // beyond the fixed bucket array.
        let mut h = LogHistogram::new();
        let before = std::mem::size_of_val(&*h.buckets);
        for v in 0..1_000_000u64 {
            h.record(v % 10_000);
        }
        let after = std::mem::size_of_val(&*h.buckets);
        assert_eq!(before, after);
        assert_eq!(h.count(), 1_000_000);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        m.inc("switch0", "dl_filtered", 2);
        m.inc("switch0", "dl_filtered", 3);
        m.set_gauge("orion", "active_phy", 2);
        m.observe("phy1", "fwd_ns", 120);
        m.observe("phy1", "fwd_ns", 180);
        assert_eq!(m.counter("switch0", "dl_filtered"), 5);
        assert_eq!(m.counter("switch0", "absent"), 0);
        assert_eq!(m.gauge("orion", "active_phy"), Some(2));
        assert_eq!(m.histogram("phy1", "fwd_ns").unwrap().count(), 2);
    }

    #[test]
    fn exporters_are_deterministic() {
        let build = || {
            let mut m = MetricsRegistry::new();
            // Insert in different orders; BTreeMap normalizes.
            m.inc("b", "z", 1);
            m.inc("a", "y", 2);
            m.set_gauge("c", "g", -7);
            m.observe("a", "h", 42);
            m
        };
        let build2 = || {
            let mut m = MetricsRegistry::new();
            m.observe("a", "h", 42);
            m.set_gauge("c", "g", -7);
            m.inc("a", "y", 2);
            m.inc("b", "z", 1);
            m
        };
        assert_eq!(build().to_json(), build2().to_json());
        assert_eq!(build().to_text(), build2().to_text());
        let json = build().to_json();
        assert!(json.contains("\"a/y\":2"));
        assert!(json.contains("\"c/g\":-7"));
        assert!(json.contains("\"a/h\":{\"count\":1"));
    }

    #[test]
    fn merge_combines() {
        let mut a = MetricsRegistry::new();
        a.inc("s", "c", 1);
        a.observe("s", "h", 10);
        let mut b = MetricsRegistry::new();
        b.inc("s", "c", 2);
        b.observe("s", "h", 20);
        a.merge(&b);
        assert_eq!(a.counter("s", "c"), 3);
        assert_eq!(a.histogram("s", "h").unwrap().count(), 2);
    }

    #[test]
    fn empty_histogram_yields_none_everywhere() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(100.0), None);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(777);
        for p in [0.0, 0.001, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(777), "p={p}");
        }
        assert_eq!(h.min(), Some(777));
        assert_eq!(h.max(), Some(777));
        assert_eq!(h.mean(), Some(777.0));
    }

    #[test]
    fn percentile_extremes_clamp_to_observed_range() {
        let mut h = LogHistogram::new();
        for v in [3, 10, 1_000, 50_000] {
            h.record(v);
        }
        // p=0.0 clamps the rank to the first sample's bucket; p=100.0
        // reports exactly the observed max, never the bucket's upper
        // bound beyond it.
        assert_eq!(h.percentile(0.0), Some(3));
        assert_eq!(h.percentile(100.0), Some(50_000));
    }

    #[test]
    fn saturation_bucket_holds_u64_max() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1);
        // The top bucket's upper bound must not overflow, and the
        // percentile clamp keeps reports at the observed max.
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
        assert_eq!(h.p50(), Some(u64::MAX));
        assert!(bucket_index(u64::MAX) < BUCKETS);
        assert!(bucket_upper(bucket_index(u64::MAX)) >= u64::MAX - 1);
    }

    #[test]
    fn merge_of_disjoint_ranges_combines_extremes() {
        let mut low = LogHistogram::new();
        for v in 1..=100u64 {
            low.record(v);
        }
        let mut high = LogHistogram::new();
        for v in 1_000_000..=1_000_100u64 {
            high.record(v);
        }
        low.merge(&high);
        assert_eq!(low.count(), 201);
        assert_eq!(low.min(), Some(1));
        assert_eq!(low.max(), Some(1_000_100));
        // p25 still lands in the low range, p99 in the high range.
        assert!(low.percentile(25.0).unwrap() <= 100);
        assert!(low.percentile(99.0).unwrap() >= 1_000_000);
        // Merging an empty histogram is a no-op.
        let before = low.count();
        low.merge(&LogHistogram::new());
        assert_eq!(low.count(), before);
        assert_eq!(low.min(), Some(1));
    }

    #[test]
    fn record_n_sum_does_not_overflow_u64() {
        let mut h = LogHistogram::new();
        // v * n = 2^40 * 2^26 = 2^66 > u64::MAX: the u128 accumulator
        // must keep the mean exact where a u64 sum would have wrapped.
        let v = 1u64 << 40;
        let n = 1u64 << 26;
        h.record_n(v, n);
        assert_eq!(h.count(), n);
        assert_eq!(h.mean(), Some(v as f64));
        assert_eq!(h.min(), Some(v));
        assert_eq!(h.max(), Some(v));
        // n = 0 records nothing.
        h.record_n(123, 0);
        assert_eq!(h.count(), n);
        assert_eq!(h.min(), Some(v));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut m = MetricsRegistry::new();
        m.inc("phy1", "ul_slots", 7);
        m.inc("phy2", "ul_slots", 9);
        m.set_gauge("orion", "active-phy", -1);
        m.observe("phy1", "fwd_ns", 120);
        m.observe("phy1", "fwd_ns", 180);
        let p = m.to_prometheus();
        // One TYPE line per family even with two scopes.
        assert_eq!(p.matches("# TYPE ul_slots counter").count(), 1);
        assert!(p.contains("ul_slots{scope=\"phy1\"} 7"));
        assert!(p.contains("ul_slots{scope=\"phy2\"} 9"));
        // Gauge name sanitized ('-' is not a legal metric char).
        assert!(p.contains("# TYPE active_phy gauge"));
        assert!(p.contains("active_phy{scope=\"orion\"} -1"));
        // Histogram exports as a summary with quantiles + sum/count.
        assert!(p.contains("# TYPE fwd_ns summary"));
        assert!(p.contains("fwd_ns{scope=\"phy1\",quantile=\"0.5\"}"));
        assert!(p.contains("fwd_ns_count{scope=\"phy1\"} 2"));
        assert!(p.contains("fwd_ns_sum{scope=\"phy1\"} 300"));
        // Deterministic: same registry, same exposition.
        assert_eq!(p, m.to_prometheus());
    }
}
