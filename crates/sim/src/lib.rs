//! # slingshot-sim
//!
//! Deterministic discrete-event simulation engine underpinning the
//! Slingshot (SIGCOMM 2023) reproduction.
//!
//! The crate provides:
//!
//! - [`time`]: nanosecond simulated time and 5G NR slot/TTI arithmetic
//!   (30 kHz SCS, 500 µs slots, SFN wraparound, the DDDSU TDD pattern).
//! - [`rng`]: a self-contained xoshiro256** PRNG with labeled forking so
//!   every component gets an independent, reproducible stream.
//! - [`engine`]: the event queue, the [`engine::Node`] trait, and
//!   point-to-point links with latency, bandwidth, FIFO queueing and
//!   fault injection (drop / corrupt / jitter), in the spirit of
//!   smoltcp's fault-injecting device wrappers.
//! - [`stats`]: percentile samplers, 10 ms-bin throughput accounting and
//!   online statistics used by every experiment harness.
//! - [`trace`]: the slot-aware structured event trace every engine
//!   records into — a bounded ring of `(time, node, slot, kind, payload)`
//!   records with Chrome `trace_event` export and derived measures
//!   (detection latency, delivered-TTI gaps). Byte-identical across
//!   same-seed runs.
//! - [`metrics`]: bounded-memory counters/gauges/log-bucketed histograms
//!   scoped per component, with deterministic text, JSON and
//!   Prometheus-exposition exporters.
//! - [`profiler`]: an opt-in wall-clock span profiler for the slot
//!   pipeline (deadline budgets, per-stage histograms, Chrome-trace
//!   spans). Strictly a side channel: it never writes to the hashed
//!   deterministic trace, so enabling it cannot perturb determinism.
//! - [`slo`]: long-horizon availability analysis — per-cell outage
//!   intervals, nines, MTBF/MTTR and time-to-repair distributions
//!   derived purely from the deterministic trace stream.
//!
//! Design note: event dispatch is synchronous and single-threaded.
//! Real vRAN software busy-polls on dedicated cores; in a simulation,
//! an async runtime would add nondeterminism without modeling value, so
//! (per the project's networking guides) we use event-driven synchronous
//! code and replace wall-clock waiting with simulated time. Pure DSP
//! compute *within* one event, however, may fan out across the
//! [`pool::WorkerPool`]: jobs carry pre-split RNG streams and results
//! merge in submission order, so worker count never changes the trace
//! (see DESIGN.md §5d).

pub mod chaos;
pub mod engine;
pub mod kernels;
pub mod metrics;
pub mod pool;
pub mod profiler;
pub mod rng;
pub mod slo;
pub mod stats;
pub mod time;
pub mod trace;

pub use chaos::{ChaosDistribution, Fault, FaultKind, FaultTarget, Scenario};
pub use engine::{Ctx, Engine, LinkParams, LinkStats, Message, Node, NodeId};
pub use kernels::{KernelBackend, KernelConfig};
pub use metrics::{HistogramSummary, Instrument, InstrumentSink, LogHistogram, MetricsRegistry};
pub use pool::{ScratchPool, WorkerPool};
pub use profiler::{ProfilerReport, SpanGuard, SpanProfiler, StageProfile};
pub use rng::SimRng;
pub use slo::{CellSlo, FleetSlo, Outage, SloConfig, SloReport};
pub use stats::{OnlineStats, RateBins, Sampler};
pub use time::{
    Nanos, SlotClock, SlotId, SlotKind, TddPattern, SFN_MODULO, SLOTS_PER_FRAME,
    SLOTS_PER_SUBFRAME, SLOT_DURATION, SUBFRAMES_PER_FRAME, SYMBOLS_PER_SLOT,
};
pub use trace::{Detection, TraceBuffer, TraceEvent, TraceEventKind};
