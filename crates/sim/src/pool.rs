//! Fixed worker pool for deterministic parallel slot processing.
//!
//! The simulator's event dispatch stays strictly serial — only *pure
//! compute* (tbchain encode/decode, channel application) is offloaded
//! here. A caller submits a batch of closures and blocks until all of
//! them have run; results come back in submission order, so the merged
//! output is independent of scheduling. Combined with per-job RNG
//! streams split *before* submission (see [`crate::rng::SimRng::split`])
//! this makes an N-worker run byte-identical to the 1-worker run: the
//! pool only changes *when* a job executes, never *what* it computes or
//! the order its result is observed in.
//!
//! Two details matter for the data path built on top:
//!
//! - **Help-while-waiting:** a thread blocked in [`WorkerPool::run`]
//!   executes queued jobs itself while its batch is incomplete. This
//!   makes nested submission (a per-PDU job that internally fans out
//!   per-code-block jobs) deadlock-free even when every worker is a
//!   waiter.
//! - **Serial mode:** `workers <= 1` spawns no threads at all and runs
//!   jobs inline, so the 1-worker configuration exercises the *same*
//!   job-granular code path as the N-worker one — the determinism
//!   contract is "same jobs, same per-job RNG", not "same thread".

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// A queued unit of work: runs, and records completion in its batch.
type Job = Box<dyn FnOnce() + Send>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Notified on every job enqueue, batch completion, and shutdown.
    cv: Condvar,
}

impl PoolInner {
    /// Pop and run one queued job. Returns false if the queue was empty.
    fn run_one(&self) -> bool {
        let job = {
            let mut state = self.state.lock().unwrap();
            state.queue.pop_front()
        };
        match job {
            Some(job) => {
                job();
                true
            }
            None => false,
        }
    }
}

/// Shared completion tracker for one `run()` batch.
struct Batch<T> {
    results: Mutex<Vec<Option<thread::Result<T>>>>,
    remaining: AtomicUsize,
}

/// A fixed pool of compute workers (or an inline serial executor when
/// built with `workers <= 1`). Cheap to clone — clones share the same
/// threads.
#[derive(Clone)]
pub struct WorkerPool {
    /// `None` means serial mode: `run()` executes jobs inline.
    inner: Option<Arc<PoolInner>>,
    workers: usize,
    /// Join handles, owned by the first handle only (drop semantics).
    _threads: Arc<ThreadSet>,
}

struct ThreadSet {
    inner: Option<Arc<PoolInner>>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Drop for ThreadSet {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            {
                let mut state = inner.state.lock().unwrap();
                state.shutdown = true;
            }
            inner.cv.notify_all();
            for h in self.handles.lock().unwrap().drain(..) {
                let _ = h.join();
            }
        }
    }
}

impl WorkerPool {
    /// A pool with `n` worker threads. `n <= 1` spawns no threads and
    /// executes jobs inline in `run()` (still job-granular, so the code
    /// path is identical to the threaded one).
    pub fn new(n: usize) -> WorkerPool {
        if n <= 1 {
            return WorkerPool::serial();
        }
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let inner = Arc::clone(&inner);
            let h = thread::Builder::new()
                .name(format!("slot-worker-{i}"))
                .spawn(move || loop {
                    let job = {
                        let mut state = inner.state.lock().unwrap();
                        loop {
                            if let Some(job) = state.queue.pop_front() {
                                break Some(job);
                            }
                            if state.shutdown {
                                break None;
                            }
                            state = inner.cv.wait(state).unwrap();
                        }
                    };
                    match job {
                        Some(job) => job(),
                        None => return,
                    }
                })
                .expect("spawn slot worker");
            handles.push(h);
        }
        WorkerPool {
            inner: Some(Arc::clone(&inner)),
            workers: n,
            _threads: Arc::new(ThreadSet {
                inner: Some(inner),
                handles: Mutex::new(handles),
            }),
        }
    }

    /// The inline serial executor (one logical worker, zero threads).
    pub fn serial() -> WorkerPool {
        WorkerPool {
            inner: None,
            workers: 1,
            _threads: Arc::new(ThreadSet {
                inner: None,
                handles: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Logical worker count (1 for the serial pool).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True when `run()` executes inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.inner.is_none()
    }

    /// Execute a batch of jobs and return their results in submission
    /// order. Blocks until the whole batch is complete; the calling
    /// thread helps drain the queue while it waits (which also makes
    /// nested `run()` calls from inside jobs safe). A panicking job
    /// re-panics here on the caller.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let inner = match &self.inner {
            None => {
                // Serial mode: inline, in order.
                return jobs.into_iter().map(|f| f()).collect();
            }
            Some(inner) => inner,
        };
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // A single job gains nothing from a round-trip through the
            // queue; run it inline (identical result, same code).
            let mut it = jobs.into_iter();
            return vec![it.next().unwrap()()];
        }

        let batch = Arc::new(Batch::<T> {
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: AtomicUsize::new(n),
        });

        {
            let mut state = inner.state.lock().unwrap();
            for (idx, f) in jobs.into_iter().enumerate() {
                let batch = Arc::clone(&batch);
                let inner2 = Arc::clone(inner);
                state.queue.push_back(Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(f));
                    batch.results.lock().unwrap()[idx] = Some(out);
                    if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Last job: wake the batch's waiter. Taking the
                        // state lock orders this notify after the
                        // waiter's re-check, preventing lost wakeups.
                        let _guard = inner2.state.lock().unwrap();
                        inner2.cv.notify_all();
                    }
                }));
            }
            drop(state);
            inner.cv.notify_all();
        }

        // Help drain the queue while the batch is incomplete. Once the
        // queue is empty but jobs are still in flight on other workers,
        // sleep on the condvar (woken by completion or new enqueues).
        while batch.remaining.load(Ordering::Acquire) > 0 {
            if !inner.run_one() {
                let state = inner.state.lock().unwrap();
                if batch.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                if !state.queue.is_empty() {
                    continue;
                }
                let _unused = inner.cv.wait(state).unwrap();
            }
        }

        let mut results = batch.results.lock().unwrap();
        results
            .drain(..)
            .map(|slot| match slot.expect("batch job completed") {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    }
}

/// A shared free-list of reusable scratch objects for pool jobs.
///
/// Jobs running on a [`WorkerPool`] (and the serial prepare/merge code
/// around them) `take` a scratch, use its buffers, and `put` it back,
/// so per-slot intermediate allocations are amortized across TTIs
/// instead of re-made every job. Which physical scratch a job receives
/// is scheduling-dependent — that is fine for determinism because a
/// scratch carries **no information between uses**: every consumer must
/// fully overwrite (or clear) any buffer before reading it. Outputs
/// therefore never depend on handout order, and N-worker traces stay
/// byte-identical to 1-worker ones.
///
/// Cheap to clone — clones share the same free-list.
pub struct ScratchPool<T> {
    free: Arc<Mutex<Vec<T>>>,
}

impl<T> Clone for ScratchPool<T> {
    fn clone(&self) -> Self {
        ScratchPool {
            free: Arc::clone(&self.free),
        }
    }
}

impl<T: Default> Default for ScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default> ScratchPool<T> {
    pub fn new() -> ScratchPool<T> {
        ScratchPool {
            free: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Pop a scratch from the free-list, or default-construct one when
    /// the list is empty (the pool grows to the peak number of
    /// concurrently live scratches and then stops allocating).
    pub fn take(&self) -> T {
        self.free.lock().unwrap().pop().unwrap_or_default()
    }

    /// Return a scratch for reuse.
    pub fn put(&self, scratch: T) {
        self.free.lock().unwrap().push(scratch);
    }

    /// Number of scratches currently parked in the free-list.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap().len()
    }
}

impl<T> std::fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("idle", &self.free.lock().unwrap().len())
            .finish()
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("serial", &self.is_serial())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = WorkerPool::serial();
        assert_eq!(pool.workers(), 1);
        assert!(pool.is_serial());
        let out = pool.run((0..16).map(|i| move || i * i).collect::<Vec<_>>());
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_pool_preserves_submission_order() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let out = pool.run(
            (0..64)
                .map(|i| {
                    move || {
                        // Stagger finish times so completion order differs
                        // from submission order.
                        std::thread::sleep(std::time::Duration::from_micros(64 - i));
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(out, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn one_and_n_workers_agree() {
        let serial = WorkerPool::new(1);
        let par = WorkerPool::new(4);
        let mk = || {
            (0..32)
                .map(|i: u64| move || i.wrapping_mul(0x9E37_79B9).rotate_left(13))
                .collect::<Vec<_>>()
        };
        assert_eq!(serial.run(mk()), par.run(mk()));
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        let pool = WorkerPool::new(2);
        // Outer jobs outnumber workers and each submits an inner batch;
        // without help-while-waiting this wedges every worker.
        let out = pool.run(
            (0..8u64)
                .map(|i| {
                    let pool = pool.clone();
                    move || {
                        let inner =
                            pool.run((0..8u64).map(|j| move || i * 100 + j).collect::<Vec<_>>());
                        inner.iter().sum::<u64>()
                    }
                })
                .collect::<Vec<_>>(),
        );
        let expect: Vec<u64> = (0..8u64)
            .map(|i| (0..8).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = WorkerPool::new(3);
        let out: Vec<u64> = pool.run(Vec::<fn() -> u64>::new());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "job boom")]
    fn panics_propagate_to_caller() {
        let pool = WorkerPool::new(2);
        let _ = pool.run(
            (0..4)
                .map(|i| {
                    move || {
                        if i == 2 {
                            panic!("job boom");
                        }
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn empty_batches_are_fine_everywhere() {
        // Serial mode.
        let serial = WorkerPool::serial();
        let out: Vec<u64> = serial.run(Vec::<fn() -> u64>::new());
        assert!(out.is_empty());
        // Threaded mode, nested: jobs that themselves submit zero-job
        // batches (the n == 0 early-return must not touch the queue or
        // the condvar while the outer batch is draining).
        let pool = WorkerPool::new(2);
        let out = pool.run(
            (0..8u64)
                .map(|i| {
                    let pool = pool.clone();
                    move || i + pool.run(Vec::<fn() -> u64>::new()).len() as u64
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(out, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "inner boom")]
    fn panic_propagates_from_nested_batch() {
        // A panic two levels down — inside an inner batch submitted by
        // an outer job running on a worker thread — must resurface on
        // the original caller with its payload intact, not wedge the
        // pool or vanish into a worker.
        let pool = WorkerPool::new(2);
        let _ = pool.run(
            (0..4u64)
                .map(|i| {
                    let pool = pool.clone();
                    move || {
                        let inner = pool.run(
                            (0..4u64)
                                .map(|j| {
                                    move || {
                                        if i == 1 && j == 2 {
                                            panic!("inner boom");
                                        }
                                        i * 10 + j
                                    }
                                })
                                .collect::<Vec<_>>(),
                        );
                        inner.iter().sum::<u64>()
                    }
                })
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn single_job_batch_runs_inline_on_caller() {
        // The n == 1 fast path skips the queue entirely: the job runs
        // on the submitting thread, with a result identical to serial.
        let pool = WorkerPool::new(4);
        let caller = std::thread::current().id();
        let out = pool.run(vec![move || std::thread::current().id() == caller]);
        assert_eq!(out, vec![true]);

        let serial = WorkerPool::serial();
        let job = |x: u64| move || x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        assert_eq!(pool.run(vec![job(5)]), serial.run(vec![job(5)]));
    }

    #[test]
    #[should_panic(expected = "solo boom")]
    fn single_job_panic_propagates_from_inline_path() {
        let pool = WorkerPool::new(2);
        let _ = pool.run(vec![|| -> u64 { panic!("solo boom") }]);
    }

    #[test]
    fn scratch_pool_reuses_objects() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        let mut a = pool.take();
        assert!(a.is_empty());
        a.resize(1024, 7);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.take();
        // Same allocation comes back (contents are the consumer's
        // responsibility to clear).
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn scratch_pool_clones_share_freelist() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        let clone = pool.clone();
        pool.put(vec![1, 2, 3]);
        assert_eq!(clone.idle(), 1);
        assert_eq!(clone.take(), vec![1, 2, 3]);
    }

    #[test]
    fn pool_survives_clone_and_drop() {
        let pool = WorkerPool::new(2);
        let clone = pool.clone();
        drop(pool);
        let out = clone.run((0..4).map(|i| move || i + 1).collect::<Vec<_>>());
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
