//! Deterministic random number generation.
//!
//! Every stochastic component in the simulation draws from a [`SimRng`]
//! seeded from a single master seed, so a run is exactly reproducible
//! from its seed alone (and across platforms — the generator is our own
//! xoshiro256** implementation, not a version-dependent one).

use rand::RngCore;

/// SplitMix64: used to expand seeds into xoshiro state, per Vigna's
/// recommendation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** deterministic PRNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child generator for a named component.
    /// Hashing the label into the seed keeps sibling components
    /// decorrelated while remaining fully reproducible.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SimRng::new(self.next_u64() ^ h)
    }

    /// Derive an independent child generator for a numbered shard (the
    /// numeric analog of [`SimRng::fork`]). Used to pre-split per-job
    /// streams *in serial submission order* before work fans out to a
    /// worker pool: each job owns its stream, so the draws it makes are
    /// independent of worker count and scheduling.
    pub fn split(&mut self, shard: u64) -> SimRng {
        // Mix the shard index through splitmix64 so adjacent shards land
        // far apart in seed space, then combine with a fresh draw from
        // the parent (as fork does with the label hash).
        let mut sm = shard ^ 0x51C0_75EE_D051_ACED;
        let mixed = splitmix64(&mut sm);
        SimRng::new(self.next_u64() ^ mixed)
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform f64 in [lo, hi).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller. Each call performs a fresh draw
    /// (no caching) to keep fork/clone semantics simple.
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.f64();
            if u1 > f64::MIN_POSITIVE {
                let u2 = self.f64();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (SimRng::next_u64(self) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = SimRng::next_u64(self).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_decorrelated_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork("phy");
        let mut c2 = parent2.fork("phy");
        let mut other = parent1.fork("l2");
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Extremely unlikely to collide if properly decorrelated.
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn split_is_decorrelated_and_deterministic() {
        let mut parent1 = SimRng::new(11);
        let mut parent2 = SimRng::new(11);
        let mut a1 = parent1.split(0);
        let mut a2 = parent2.split(0);
        let mut b = parent1.split(1);
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
        // Splitting advances the parent, so successive splits differ
        // even with the same shard index.
        let mut c = parent1.split(0);
        assert_ne!(a1.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut r = SimRng::new(4);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::new(5);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let v = r.gaussian();
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(6);
        let n = 100_000;
        let mean_target = 3.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean_target)).sum();
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(8);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn fill_bytes_all_lengths() {
        let mut r = SimRng::new(9);
        for len in 0..33 {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                // Should not be all zeros.
                assert!(buf.iter().any(|b| *b != 0));
            }
        }
    }
}
