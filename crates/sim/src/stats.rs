//! Measurement utilities shared by experiments: percentile samplers,
//! rate bins (throughput per fixed interval, as the paper reports at
//! 10 ms granularity), and online mean/variance.

use crate::time::Nanos;

/// Collects samples and answers percentile queries. Stores raw samples;
/// fine for the volumes our experiments produce (millions).
#[derive(Debug, Clone, Default)]
pub struct Sampler {
    values: Vec<u64>,
    sorted: bool,
}

impl Sampler {
    pub fn new() -> Sampler {
        Sampler::default()
    }

    pub fn record(&mut self, v: u64) {
        self.values.push(v);
        self.sorted = false;
    }

    pub fn record_nanos(&mut self, v: Nanos) {
        self.record(v.0);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
    }

    /// The p-th percentile (0.0 ..= 100.0) using the nearest-rank method.
    /// Returns `None` on an empty sampler.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        Some(self.values[idx])
    }

    pub fn median(&mut self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// The 99th percentile (the paper's tail-latency headline figures).
    pub fn p99(&mut self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// The 99.9th percentile.
    pub fn p999(&mut self) -> Option<u64> {
        self.percentile(99.9)
    }

    /// The 99.999th percentile (Fig. 12's Orion latency bound).
    pub fn p99999(&mut self) -> Option<u64> {
        self.percentile(99.999)
    }

    pub fn min(&mut self) -> Option<u64> {
        self.ensure_sorted();
        self.values.first().copied()
    }

    pub fn max(&mut self) -> Option<u64> {
        self.ensure_sorted();
        self.values.last().copied()
    }

    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().map(|v| *v as f64).sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Empirical CDF as (value, cumulative fraction) pairs, decimated to
    /// at most `points` entries for plotting.
    pub fn cdf(&mut self, points: usize) -> Vec<(u64, f64)> {
        if self.values.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.values.len();
        let step = (n / points.max(1)).max(1);
        let mut out = Vec::new();
        let mut i = step - 1;
        while i < n {
            out.push((self.values[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|l| l.1) != Some(1.0) {
            out.push((self.values[n - 1], 1.0));
        }
        out
    }
}

/// Accumulates byte (or packet) counts into fixed-width time bins and
/// reports per-bin rates. The paper reports throughput at 10 ms bins.
#[derive(Debug, Clone)]
pub struct RateBins {
    bin_width: Nanos,
    origin: Nanos,
    bins: Vec<u64>,
}

impl RateBins {
    pub fn new(origin: Nanos, bin_width: Nanos) -> RateBins {
        assert!(bin_width.0 > 0);
        RateBins {
            bin_width,
            origin,
            bins: Vec::new(),
        }
    }

    pub fn bin_width(&self) -> Nanos {
        self.bin_width
    }

    /// Record `amount` (bytes, packets, …) at time `t`. Times before the
    /// origin are ignored.
    pub fn record(&mut self, t: Nanos, amount: u64) {
        if t < self.origin {
            return;
        }
        let idx = ((t - self.origin).0 / self.bin_width.0) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += amount;
    }

    /// Ensure bins exist through time `t` (so trailing zero bins are
    /// reported, e.g. during a blackout at the end of a run).
    pub fn extend_to(&mut self, t: Nanos) {
        if t < self.origin {
            return;
        }
        let idx = ((t - self.origin).0 / self.bin_width.0) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
    }

    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Per-bin Mbit/s assuming recorded amounts are bytes.
    pub fn mbps(&self) -> Vec<f64> {
        let secs = self.bin_width.0 as f64 / 1e9;
        self.bins
            .iter()
            .map(|b| (*b as f64 * 8.0) / secs / 1e6)
            .collect()
    }

    /// Time at the start of bin `i`.
    pub fn bin_start(&self, i: usize) -> Nanos {
        Nanos(self.origin.0 + i as u64 * self.bin_width.0)
    }

    /// Count of bins in `[from, to)` whose value is zero ("blackout"
    /// intervals in the paper's Table 2).
    pub fn zero_bins_between(&self, from: Nanos, to: Nanos) -> usize {
        self.bins
            .iter()
            .enumerate()
            .filter(|(i, v)| {
                let start = self.bin_start(*i);
                start >= from && start < to && **v == 0
            })
            .count()
    }
}

/// Numerically stable online mean / variance (Welford).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    pub fn new() -> OnlineStats {
        OnlineStats::default()
    }

    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Sampler::new();
        for v in 1..=100 {
            s.record(v);
        }
        assert_eq!(s.percentile(50.0), Some(50));
        assert_eq!(s.percentile(99.0), Some(99));
        assert_eq!(s.percentile(100.0), Some(100));
        assert_eq!(s.percentile(1.0), Some(1));
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(100));
        assert_eq!(s.mean(), Some(50.5));
    }

    #[test]
    fn percentile_empty_is_none() {
        let mut s = Sampler::new();
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn percentile_single_value() {
        let mut s = Sampler::new();
        s.record(7);
        for p in [0.0, 50.0, 99.999, 100.0] {
            assert_eq!(s.percentile(p), Some(7));
        }
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let mut s = Sampler::new();
        for v in (0..1000).rev() {
            s.record(v);
        }
        let cdf = s.cdf(10);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn rate_bins_basic() {
        let mut rb = RateBins::new(Nanos::ZERO, Nanos::from_millis(10));
        rb.record(Nanos::from_millis(1), 1000);
        rb.record(Nanos::from_millis(9), 500);
        rb.record(Nanos::from_millis(10), 200);
        rb.record(Nanos::from_millis(35), 100);
        assert_eq!(rb.bins(), &[1500, 200, 0, 100]);
        // Bin 0: 1500 bytes / 10ms = 1.2 Mbps.
        assert!((rb.mbps()[0] - 1.2).abs() < 1e-9);
    }

    #[test]
    fn rate_bins_ignore_before_origin() {
        let mut rb = RateBins::new(Nanos::from_millis(100), Nanos::from_millis(10));
        rb.record(Nanos::from_millis(50), 999);
        rb.record(Nanos::from_millis(105), 1);
        assert_eq!(rb.bins(), &[1]);
    }

    #[test]
    fn zero_bins_counts_blackouts() {
        let mut rb = RateBins::new(Nanos::ZERO, Nanos::from_millis(10));
        rb.record(Nanos::from_millis(5), 10);
        rb.extend_to(Nanos::from_millis(59));
        rb.record(Nanos::from_millis(45), 10);
        // bins: [10, 0, 0, 0, 10, 0]
        assert_eq!(rb.zero_bins_between(Nanos::ZERO, Nanos::from_millis(60)), 4);
        assert_eq!(
            rb.zero_bins_between(Nanos::from_millis(40), Nanos::from_millis(50)),
            0
        );
    }

    #[test]
    fn online_stats_matches_direct() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut st = OnlineStats::new();
        for x in xs {
            st.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((st.mean() - mean).abs() < 1e-12);
        assert!((st.variance() - var).abs() < 1e-12);
        assert_eq!(st.count(), 5);
    }

    #[test]
    fn nearest_rank_single_sample() {
        // With one sample, every percentile is that sample: rank
        // ceil(p/100 * 1) clamps to 1.
        let mut s = Sampler::new();
        s.record(42);
        for p in [0.0, 0.001, 50.0, 99.0, 99.9, 99.999, 100.0] {
            assert_eq!(s.percentile(p), Some(42), "p={p}");
        }
        assert_eq!(s.p99(), Some(42));
        assert_eq!(s.p999(), Some(42));
        assert_eq!(s.p99999(), Some(42));
    }

    #[test]
    fn nearest_rank_two_samples() {
        // n=2: rank = ceil(p/50). p <= 50 picks the lower sample,
        // p > 50 the upper.
        let mut s = Sampler::new();
        s.record(10);
        s.record(20);
        assert_eq!(s.percentile(50.0), Some(10));
        assert_eq!(s.percentile(50.1), Some(20));
        assert_eq!(s.median(), Some(10));
        assert_eq!(s.p99(), Some(20));
        assert_eq!(s.p999(), Some(20));
        assert_eq!(s.p99999(), Some(20));
    }

    #[test]
    fn nearest_rank_hundred_samples() {
        // n=100 with values 1..=100: nearest-rank p-th percentile is
        // exactly ceil(p) for integral p in (0, 100].
        let mut s = Sampler::new();
        for v in 1..=100 {
            s.record(v);
        }
        assert_eq!(s.percentile(1.0), Some(1));
        assert_eq!(s.percentile(50.0), Some(50));
        assert_eq!(s.p99(), Some(99));
        // Fractional percentiles round the rank up: 99.9 → rank 100.
        assert_eq!(s.p999(), Some(100));
        assert_eq!(s.p99999(), Some(100));
        assert_eq!(s.percentile(100.0), Some(100));
        // Out-of-range p is clamped, not panicking.
        assert_eq!(s.percentile(0.0), Some(1));
    }

    #[test]
    fn percentile_accessors_empty() {
        let mut s = Sampler::new();
        assert_eq!(s.p99(), None);
        assert_eq!(s.p999(), None);
        assert_eq!(s.p99999(), None);
    }

    #[test]
    fn percentile_sorts_unsorted_and_duplicate_input() {
        let mut s = Sampler::new();
        for v in [30, 10, 20, 10, 30] {
            s.record(v);
        }
        // n=5, rank = ceil(p/20) over sorted [10,10,20,30,30].
        assert_eq!(s.percentile(0.0), Some(10));
        assert_eq!(s.percentile(40.0), Some(10));
        assert_eq!(s.percentile(60.0), Some(20));
        assert_eq!(s.percentile(100.0), Some(30));
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(30));
    }

    #[test]
    fn empty_extremes_and_record_nanos() {
        let mut s = Sampler::new();
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(s.is_empty());
        s.record_nanos(Nanos(450_000));
        assert!(!s.is_empty());
        assert_eq!(s.percentile(50.0), Some(450_000));
    }
}
