//! Kernel backend selection shared between the engine and the DSP
//! crates.
//!
//! The simulation engine carries a [`KernelConfig`] exactly like it
//! carries a [`crate::pool::WorkerPool`]: a tiny `Copy` handle that
//! nodes read through `Ctx` and hand to whichever compute kernels they
//! invoke. The enum lives here (not in `phy-dsp`) because `phy-dsp`
//! depends on this crate, so the engine cannot name `phy-dsp` types —
//! the DSP crate wraps this config in its own dispatch handle.
//!
//! ## Exactness contract
//!
//! Selecting a SIMD backend must not change any golden trace hash. The
//! vectorized kernels are therefore split into two classes:
//!
//! - **Bit-exact** (LDPC min-sum sweeps, max-log demap folds, BFP
//!   pack/unpack): the SIMD implementation reproduces the scalar f32
//!   results bit-for-bit, so they run whenever the backend supports
//!   them.
//! - **Tolerance-gated** (AWGN generation): a vectorized variant would
//!   be a different (statistically equivalent) noise realization, so it
//!   only engages when [`KernelConfig::tolerance`] is explicitly raised
//!   above zero. The default of `0.0` means "bit-exact only", which is
//!   what CI's golden traces assert.

use std::fmt;

/// Which kernel implementation family to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable scalar Rust: the bit-exactness oracle on every host.
    Scalar,
    /// x86-64 AVX2 (8 × f32 lanes), runtime-detected.
    Avx2,
    /// aarch64 NEON (4 × f32 lanes).
    Neon,
}

impl KernelBackend {
    /// The best backend this host supports, detected at runtime.
    pub fn detect() -> KernelBackend {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return KernelBackend::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return KernelBackend::Neon;
            }
        }
        KernelBackend::Scalar
    }

    /// Whether this host can actually execute the backend.
    pub fn available(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            KernelBackend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelBackend::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// Every backend the host can execute, scalar first. Test harnesses
    /// iterate this to prove scalar/SIMD equivalence per available
    /// implementation.
    pub fn all_available() -> Vec<KernelBackend> {
        let mut v = vec![KernelBackend::Scalar];
        for b in [KernelBackend::Avx2, KernelBackend::Neon] {
            if b.available() {
                v.push(b);
            }
        }
        v
    }

    /// Stable lowercase name, used in bench reports and baseline keys.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Neon => "neon",
        }
    }

    /// Parse a backend name as accepted by the `KERNEL_BACKEND`
    /// environment override (`scalar` / `avx2` / `neon` / `detect`).
    pub fn parse(s: &str) -> Option<KernelBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelBackend::Scalar),
            "avx2" => Some(KernelBackend::Avx2),
            "neon" => Some(KernelBackend::Neon),
            "detect" | "auto" | "native" => Some(KernelBackend::detect()),
            _ => None,
        }
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Engine-carried kernel selection: the backend plus the tolerance knob
/// gating non-bit-exact SIMD variants (see module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelConfig {
    pub backend: KernelBackend,
    /// Maximum relative f32 deviation permitted for kernels whose SIMD
    /// variant cannot reproduce the scalar fold order. `0.0` (default)
    /// keeps those kernels on the bit-exact path regardless of backend.
    pub tolerance: f32,
}

impl KernelConfig {
    /// Runtime-detected backend, bit-exact kernels only.
    pub fn detect() -> KernelConfig {
        KernelConfig {
            backend: KernelBackend::detect(),
            tolerance: 0.0,
        }
    }

    /// The portable scalar oracle.
    pub fn scalar() -> KernelConfig {
        KernelConfig {
            backend: KernelBackend::Scalar,
            tolerance: 0.0,
        }
    }

    /// A specific backend, bit-exact kernels only. Falls back to scalar
    /// (with the same semantics, by the exactness contract) when the
    /// host cannot execute `backend`.
    pub fn forced(backend: KernelBackend) -> KernelConfig {
        let backend = if backend.available() {
            backend
        } else {
            KernelBackend::Scalar
        };
        KernelConfig {
            backend,
            tolerance: 0.0,
        }
    }

    /// Honor the `KERNEL_BACKEND` env override if set and valid, else
    /// runtime-detect. This is the engine default, so
    /// `KERNEL_BACKEND=scalar cargo test` forces the oracle everywhere
    /// without touching any call site. `KERNEL_TOLERANCE=<f32>` opts a
    /// run into the tolerance-gated SIMD variants (see
    /// [`with_tolerance`](Self::with_tolerance)); unset or unparsable
    /// means 0.0, i.e. byte-identical traces.
    pub fn from_env() -> KernelConfig {
        let cfg = match std::env::var("KERNEL_BACKEND") {
            Ok(s) => match KernelBackend::parse(&s) {
                Some(b) => KernelConfig::forced(b),
                None => KernelConfig::detect(),
            },
            Err(_) => KernelConfig::detect(),
        };
        match std::env::var("KERNEL_TOLERANCE") {
            Ok(s) => match s.trim().parse::<f32>() {
                Ok(tol) if tol.is_finite() && tol > 0.0 => cfg.with_tolerance(tol),
                _ => cfg,
            },
            Err(_) => cfg,
        }
    }

    /// Permit tolerance-gated SIMD variants up to `tol` relative f32
    /// deviation. Runs that enable this opt out of byte-identical
    /// traces versus scalar; CI never does.
    pub fn with_tolerance(mut self, tol: f32) -> KernelConfig {
        self.tolerance = tol;
        self
    }
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(KernelBackend::Scalar.available());
        assert_eq!(KernelBackend::all_available()[0], KernelBackend::Scalar);
    }

    #[test]
    fn parse_round_trips_names() {
        for b in [
            KernelBackend::Scalar,
            KernelBackend::Avx2,
            KernelBackend::Neon,
        ] {
            assert_eq!(KernelBackend::parse(b.name()), Some(b));
        }
        assert_eq!(KernelBackend::parse("AVX2"), Some(KernelBackend::Avx2));
        assert_eq!(
            KernelBackend::parse("detect"),
            Some(KernelBackend::detect())
        );
        assert_eq!(KernelBackend::parse("mmx"), None);
    }

    #[test]
    fn forced_unavailable_falls_back_to_scalar() {
        // At most one of Avx2/Neon is available on any host; the other
        // must degrade to scalar rather than crash at dispatch time.
        for b in [KernelBackend::Avx2, KernelBackend::Neon] {
            if !b.available() {
                assert_eq!(KernelConfig::forced(b).backend, KernelBackend::Scalar);
            }
        }
    }

    #[test]
    fn detect_backend_is_available() {
        assert!(KernelBackend::detect().available());
        assert!(KernelConfig::default().backend.available());
    }

    #[test]
    fn tolerance_knob_defaults_off() {
        assert_eq!(KernelConfig::detect().tolerance, 0.0);
        assert_eq!(KernelConfig::scalar().with_tolerance(0.5).tolerance, 0.5);
    }
}
