//! Simulated time and 5G NR slot arithmetic.
//!
//! Time is a monotonically increasing count of nanoseconds since the start
//! of the simulation. The paper's cell uses 30 kHz subcarrier spacing
//! (numerology µ=1), so a slot — synonymous with a TTI in this paper — is
//! 500 µs long, a subframe (1 ms) holds two slots, and a radio frame
//! (10 ms) holds twenty.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    pub const ZERO: Nanos = Nanos(0);

    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    pub fn as_micros(self) -> f64 {
        self.0 as f64 / 1e3
    }

    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; useful for "time since" computations where
    /// clock skew of zero is the correct floor.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }

    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Slot (TTI) duration for 30 kHz subcarrier spacing: 500 µs.
pub const SLOT_DURATION: Nanos = Nanos::from_micros(500);

/// Slots per 1 ms subframe at µ=1.
pub const SLOTS_PER_SUBFRAME: u32 = 2;

/// Subframes per 10 ms radio frame.
pub const SUBFRAMES_PER_FRAME: u32 = 10;

/// Slots per radio frame at µ=1.
pub const SLOTS_PER_FRAME: u32 = SLOTS_PER_SUBFRAME * SUBFRAMES_PER_FRAME;

/// System frame numbers wrap at 1024, as in 3GPP.
pub const SFN_MODULO: u32 = 1024;

/// OFDM symbols per slot (normal cyclic prefix).
pub const SYMBOLS_PER_SLOT: u32 = 14;

/// A fully qualified slot identity: system frame number, subframe within
/// the frame, and slot within the subframe. This triple appears verbatim
/// in O-RAN fronthaul packet headers and is what the in-switch middlebox
/// parses to align migration to TTI boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId {
    /// System frame number, 0..1024.
    pub sfn: u16,
    /// Subframe within the frame, 0..10.
    pub subframe: u8,
    /// Slot within the subframe, 0..2 at µ=1.
    pub slot: u8,
}

impl SlotId {
    pub const ZERO: SlotId = SlotId {
        sfn: 0,
        subframe: 0,
        slot: 0,
    };

    /// Slot identity for an absolute slot counter (slots since t=0).
    pub fn from_absolute(abs: u64) -> SlotId {
        let slots_per_frame = SLOTS_PER_FRAME as u64;
        let frame = abs / slots_per_frame;
        let in_frame = (abs % slots_per_frame) as u32;
        SlotId {
            sfn: (frame % SFN_MODULO as u64) as u16,
            subframe: (in_frame / SLOTS_PER_SUBFRAME) as u8,
            slot: (in_frame % SLOTS_PER_SUBFRAME) as u8,
        }
    }

    /// The absolute slot index *within the current SFN epoch* (SFN wraps
    /// at 1024 frames = 10.24 s). Comparisons across a wrap must use
    /// [`SlotId::wrapping_distance`].
    pub fn epoch_index(self) -> u64 {
        self.sfn as u64 * SLOTS_PER_FRAME as u64
            + self.subframe as u64 * SLOTS_PER_SUBFRAME as u64
            + self.slot as u64
    }

    /// Number of slots from `self` to `other`, assuming `other` is not
    /// more than half an SFN epoch ahead (handles SFN wraparound).
    pub fn wrapping_distance(self, other: SlotId) -> i64 {
        let epoch = SFN_MODULO as i64 * SLOTS_PER_FRAME as i64;
        let mut d = other.epoch_index() as i64 - self.epoch_index() as i64;
        if d > epoch / 2 {
            d -= epoch;
        } else if d < -epoch / 2 {
            d += epoch;
        }
        d
    }

    /// The slot `n` slots after this one.
    pub fn advance(self, n: u64) -> SlotId {
        let epoch = SFN_MODULO as u64 * SLOTS_PER_FRAME as u64;
        SlotId::from_absolute((self.epoch_index() + n) % epoch)
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.sfn, self.subframe, self.slot)
    }
}

/// Converts between absolute simulated time and slot identity. All nodes
/// in the testbed are PTP-synchronized (per the paper), which in the
/// simulation means they share this clock exactly.
#[derive(Debug, Clone, Copy)]
pub struct SlotClock {
    /// Simulation time at which absolute slot 0 began.
    pub origin: Nanos,
}

impl SlotClock {
    pub fn new(origin: Nanos) -> SlotClock {
        SlotClock { origin }
    }

    /// Absolute slot counter (not wrapped) containing time `t`.
    pub fn absolute_slot(&self, t: Nanos) -> u64 {
        t.saturating_sub(self.origin).0 / SLOT_DURATION.0
    }

    pub fn slot_id(&self, t: Nanos) -> SlotId {
        SlotId::from_absolute(self.absolute_slot(t))
    }

    /// Start time of the given absolute slot.
    pub fn slot_start(&self, abs: u64) -> Nanos {
        Nanos(self.origin.0 + abs * SLOT_DURATION.0)
    }

    /// Start time of the next slot boundary strictly after `t`.
    pub fn next_slot_start(&self, t: Nanos) -> Nanos {
        self.slot_start(self.absolute_slot(t) + 1)
    }

    /// Time offset of `t` within its slot.
    pub fn offset_in_slot(&self, t: Nanos) -> Nanos {
        Nanos(t.saturating_sub(self.origin).0 % SLOT_DURATION.0)
    }
}

/// TDD slot roles for the paper's "DDDSU" pattern: three downlink slots,
/// one special (guard) slot, one uplink slot, repeating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    Downlink,
    Special,
    Uplink,
}

/// The TDD pattern used by the paper's cell ("DDDSU").
#[derive(Debug, Clone)]
pub struct TddPattern {
    kinds: Vec<SlotKind>,
}

impl TddPattern {
    /// The paper's DDDSU pattern.
    pub fn dddsu() -> TddPattern {
        TddPattern {
            kinds: vec![
                SlotKind::Downlink,
                SlotKind::Downlink,
                SlotKind::Downlink,
                SlotKind::Special,
                SlotKind::Uplink,
            ],
        }
    }

    /// Build an arbitrary pattern from a string of 'D', 'S', 'U'.
    pub fn parse(s: &str) -> Option<TddPattern> {
        let kinds = s
            .chars()
            .map(|c| match c {
                'D' | 'd' => Some(SlotKind::Downlink),
                'S' | 's' => Some(SlotKind::Special),
                'U' | 'u' => Some(SlotKind::Uplink),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        if kinds.is_empty() {
            None
        } else {
            Some(TddPattern { kinds })
        }
    }

    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    pub fn kind(&self, abs_slot: u64) -> SlotKind {
        self.kinds[(abs_slot % self.kinds.len() as u64) as usize]
    }

    /// Fraction of slots that are uplink.
    pub fn uplink_fraction(&self) -> f64 {
        self.kinds
            .iter()
            .filter(|k| **k == SlotKind::Uplink)
            .count() as f64
            / self.kinds.len() as f64
    }

    /// Fraction of slots that are downlink.
    pub fn downlink_fraction(&self) -> f64 {
        self.kinds
            .iter()
            .filter(|k| **k == SlotKind::Downlink)
            .count() as f64
            / self.kinds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_conversions() {
        assert_eq!(Nanos::from_micros(500).0, 500_000);
        assert_eq!(Nanos::from_millis(3).0, 3_000_000);
        assert_eq!(Nanos::from_secs(2).0, 2_000_000_000);
        assert!((Nanos::from_millis(10).as_secs() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn nanos_display_scales() {
        assert_eq!(format!("{}", Nanos(12)), "12ns");
        assert_eq!(format!("{}", Nanos::from_micros(500)), "500.000us");
        assert_eq!(format!("{}", Nanos::from_millis(6)), "6.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(1)), "1.000s");
    }

    #[test]
    fn slot_id_roundtrip() {
        for abs in [0u64, 1, 19, 20, 21, 20479, 20480, 20481, 1_000_000] {
            let id = SlotId::from_absolute(abs);
            let epoch = SFN_MODULO as u64 * SLOTS_PER_FRAME as u64;
            assert_eq!(id.epoch_index(), abs % epoch, "abs={abs}");
        }
    }

    #[test]
    fn slot_id_fields() {
        // Slot 43 = frame 2 (40 slots per 2 frames), subframe 1, slot 1.
        let id = SlotId::from_absolute(43);
        assert_eq!(id.sfn, 2);
        assert_eq!(id.subframe, 1);
        assert_eq!(id.slot, 1);
    }

    #[test]
    fn slot_wrapping_distance() {
        let epoch = SFN_MODULO as u64 * SLOTS_PER_FRAME as u64;
        let near_end = SlotId::from_absolute(epoch - 2);
        let after_wrap = SlotId::from_absolute(1);
        assert_eq!(near_end.wrapping_distance(after_wrap), 3);
        assert_eq!(after_wrap.wrapping_distance(near_end), -3);
        let a = SlotId::from_absolute(100);
        let b = SlotId::from_absolute(107);
        assert_eq!(a.wrapping_distance(b), 7);
    }

    #[test]
    fn slot_advance_wraps() {
        let epoch = SFN_MODULO as u64 * SLOTS_PER_FRAME as u64;
        let id = SlotId::from_absolute(epoch - 1);
        assert_eq!(id.advance(1), SlotId::ZERO);
        assert_eq!(id.advance(2), SlotId::from_absolute(1));
    }

    #[test]
    fn slot_clock_boundaries() {
        let clk = SlotClock::new(Nanos::ZERO);
        assert_eq!(clk.absolute_slot(Nanos(0)), 0);
        assert_eq!(clk.absolute_slot(Nanos(499_999)), 0);
        assert_eq!(clk.absolute_slot(Nanos(500_000)), 1);
        assert_eq!(clk.next_slot_start(Nanos(0)), Nanos(500_000));
        assert_eq!(clk.next_slot_start(Nanos(500_000)), Nanos(1_000_000));
        assert_eq!(clk.offset_in_slot(Nanos(750_000)), Nanos(250_000));
    }

    #[test]
    fn slot_clock_with_origin() {
        let clk = SlotClock::new(Nanos::from_micros(100));
        assert_eq!(clk.absolute_slot(Nanos::from_micros(99)), 0);
        assert_eq!(clk.absolute_slot(Nanos::from_micros(600)), 1);
        assert_eq!(clk.slot_start(2), Nanos::from_micros(1100));
    }

    #[test]
    fn tdd_dddsu() {
        let p = TddPattern::dddsu();
        assert_eq!(p.len(), 5);
        assert_eq!(p.kind(0), SlotKind::Downlink);
        assert_eq!(p.kind(2), SlotKind::Downlink);
        assert_eq!(p.kind(3), SlotKind::Special);
        assert_eq!(p.kind(4), SlotKind::Uplink);
        assert_eq!(p.kind(5), SlotKind::Downlink);
        assert!((p.uplink_fraction() - 0.2).abs() < 1e-12);
        assert!((p.downlink_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn tdd_parse() {
        let p = TddPattern::parse("DDSU").unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.kind(3), SlotKind::Uplink);
        assert!(TddPattern::parse("DDX").is_none());
        assert!(TddPattern::parse("").is_none());
    }
}
