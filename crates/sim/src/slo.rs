//! Long-horizon availability / SLO analysis over the event trace.
//!
//! The chaos oracle ([`crate::chaos::oracle`]) answers a pass/fail
//! question about one scenario. This module answers the quantitative
//! question operators (and the Markov models in "Designing Reliable
//! Virtualized RANs") actually ask: *how available* was each cell over
//! a long horizon, and how is repair time distributed?
//!
//! Everything is derived purely from the deterministic trace stream:
//!
//! - per-cell service timelines from `MapFlip` ownership flips layered
//!   over the initial RU→PHY map (the same reconstruction the oracle
//!   uses), attributing every delivered `UlSlotProcessed` TTI to a cell;
//! - gaps in a cell's delivered-TTI cadence become *outage intervals*,
//!   which yield nines-of-availability, MTBF, MTTR, and time-to-repair
//!   distributions per cell and fleet-wide;
//! - `DetectorSaturated` events yield detection-latency stats, and the
//!   `SpareRequested`/`SpareGranted`/`SpareReturned`/`StandbyRepaired`
//!   lifecycle events yield the spare-pool ledger.
//!
//! Because the trace buffer is a bounded ring, a long run may have
//! evicted its oldest events; [`SloReport::truncated`] surfaces
//! [`TraceBuffer::dropped_oldest`] so downstream reports never present
//! numbers from a silently clipped window as full-horizon availability.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::LogHistogram;
use crate::stats::Sampler;
use crate::time::{Nanos, SLOT_DURATION};
use crate::trace::{detections, TraceBuffer, TraceEventKind};

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Uplink TTI cadence in slots (DDDSU ⇒ 5: one UL slot per cycle).
    pub tdd_stride: u64,
    /// Absolute slot the run was driven to. When non-zero, a cell that
    /// stopped delivering before the horizon is charged a trailing
    /// outage (a permanently dead cell must not look 100% available
    /// just because its delivered-TTI window ended early). 0 = judge
    /// only between each cell's first and last delivery.
    pub horizon_slots: u64,
    /// Initial RU → active-PHY map, as in
    /// `oracle::Expectations::initial_active`. Empty = single implicit
    /// cell 0 that owns every delivered TTI (single-cell deployments).
    pub initial_active: Vec<(u64, u64)>,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            tdd_stride: 5,
            horizon_slots: 0,
            initial_active: Vec::new(),
        }
    }
}

/// One contiguous service interruption of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    pub ru: u64,
    /// Last delivered absolute slot before the gap.
    pub start_slot: u64,
    /// First delivered absolute slot after the gap (or the horizon for
    /// a trailing outage the cell never recovered from).
    pub end_slot: u64,
    /// Scheduled uplink TTIs that were never delivered in the gap.
    pub missing_ttis: u64,
}

impl Outage {
    /// Outage duration in simulated time (missing TTIs × TDD cycle).
    pub fn duration(&self, tdd_stride: u64) -> Nanos {
        Nanos(self.missing_ttis * tdd_stride * SLOT_DURATION.0)
    }
}

/// Availability summary of one cell.
#[derive(Debug, Clone)]
pub struct CellSlo {
    pub ru: u64,
    pub expected_ttis: u64,
    pub delivered_ttis: u64,
    pub dropped_ttis: u64,
    /// delivered / expected in [0, 1].
    pub availability: f64,
    /// −log₁₀(1 − availability), capped at 9.0 (no drop ⇒ 9.0).
    pub nines: f64,
    pub outages: Vec<Outage>,
    /// Mean up-time between outage starts (None with no outage).
    pub mtbf: Option<Nanos>,
    /// Mean outage duration (None with no outage).
    pub mttr: Option<Nanos>,
    pub ttr_p50: Option<Nanos>,
    pub ttr_p99: Option<Nanos>,
    pub ttr_max: Option<Nanos>,
    /// p99 of per-outage dropped-TTI counts (0 with no outage).
    pub dropped_tti_p99: u64,
    /// Histogram of per-outage dropped-TTI counts.
    pub dropped_hist: LogHistogram,
}

/// Fleet-wide aggregate plus control-plane lifecycle stats.
#[derive(Debug, Clone)]
pub struct FleetSlo {
    pub cells: u64,
    pub expected_ttis: u64,
    pub delivered_ttis: u64,
    pub dropped_ttis: u64,
    pub availability: f64,
    pub nines: f64,
    pub outages: u64,
    pub mtbf: Option<Nanos>,
    pub mttr: Option<Nanos>,
    pub ttr_p50: Option<Nanos>,
    pub ttr_p99: Option<Nanos>,
    pub ttr_max: Option<Nanos>,
    /// Failure detections and their latency tail (§5.2's ≤ 450 µs).
    pub detections: u64,
    pub detection_p50: Option<Nanos>,
    pub detection_max: Option<Nanos>,
    /// Spare-pool lifecycle counts.
    pub spare_requests: u64,
    pub spare_grants: u64,
    pub spare_returns: u64,
    pub repairs: u64,
    /// Worst single cell, for SLO floors.
    pub worst_cell_nines: f64,
    pub worst_cell_dropped_tti_p99: u64,
}

/// The full availability report.
#[derive(Debug, Clone)]
pub struct SloReport {
    pub cells: Vec<CellSlo>,
    pub fleet: FleetSlo,
    /// True when the trace ring evicted events: the window is partial
    /// and every number here is a lower-confidence estimate.
    pub truncated: bool,
    pub evicted_events: u64,
    pub tdd_stride: u64,
    pub horizon_slots: u64,
}

/// Availability capped into nines: 0 drops ⇒ 9.0 ("nine nines or
/// better"), total blackout ⇒ 0.0.
pub fn nines_of(availability: f64) -> f64 {
    if availability >= 1.0 {
        9.0
    } else if availability <= 0.0 {
        0.0
    } else {
        (-(1.0 - availability).log10()).clamp(0.0, 9.0)
    }
}

/// Active-PHY owner of a cell at `slot` from its flip timeline.
fn owner_at(timeline: &[(u64, u64)], slot: u64) -> u64 {
    timeline
        .iter()
        .rev()
        .find(|&&(from, _)| from <= slot)
        .map(|&(_, phy)| phy)
        .unwrap_or(u64::MAX)
}

/// Derive the full availability report from a trace.
pub fn analyze(trace: &TraceBuffer, cfg: &SloConfig) -> SloReport {
    // --- ownership timelines (mirrors oracle::check_per_cell) ---
    let mut timelines: BTreeMap<u64, Vec<(u64, u64)>> = cfg
        .initial_active
        .iter()
        .map(|&(ru, phy)| (ru, vec![(0, phy)]))
        .collect();
    let mut flips: Vec<_> = trace.of_kind(TraceEventKind::MapFlip).collect();
    flips.sort_by_key(|e| e.at);
    for e in &flips {
        let slot = e.at.0 / SLOT_DURATION.0;
        timelines.entry(e.a).or_default().push((slot, e.b & 0xFFFF));
    }

    let attribute = |phy: u64, slot: u64| -> Option<u64> {
        if timelines.is_empty() {
            return Some(0);
        }
        timelines
            .iter()
            .find(|(_, tl)| owner_at(tl, slot) == phy)
            .or_else(|| {
                timelines.iter().find(|(_, tl)| {
                    owner_at(tl, slot.saturating_sub(1)) == phy || owner_at(tl, slot + 1) == phy
                })
            })
            .map(|(&ru, _)| ru)
    };

    // --- per-cell delivered-TTI series ---
    let mut per_ru: BTreeMap<u64, Vec<u64>> = if timelines.is_empty() {
        [(0, Vec::new())].into_iter().collect()
    } else {
        timelines.keys().map(|&ru| (ru, Vec::new())).collect()
    };
    for e in trace.of_kind(TraceEventKind::UlSlotProcessed) {
        if let Some(ru) = attribute(e.b, e.a) {
            per_ru.entry(ru).or_default().push(e.a);
        }
    }

    let mut cells = Vec::new();
    let mut all_ttr = Sampler::new();
    let mut fleet_expected = 0u64;
    let mut fleet_delivered = 0u64;
    let mut fleet_outages = 0u64;
    let mut fleet_uptime_ns = 0u128;
    for (&ru, slots) in &mut per_ru {
        let mut slots = std::mem::take(slots);
        slots.sort_unstable();
        slots.dedup();
        let cell = analyze_cell(ru, &slots, cfg);
        for o in &cell.outages {
            all_ttr.record_nanos(o.duration(cfg.tdd_stride));
        }
        fleet_expected += cell.expected_ttis;
        fleet_delivered += cell.delivered_ttis;
        fleet_outages += cell.outages.len() as u64;
        if let (Some(&first), Some(&last)) = (slots.first(), slots.last()) {
            let span_end = if cfg.horizon_slots > last {
                cfg.horizon_slots
            } else {
                last
            };
            let dropped_ns =
                cell.dropped_ttis as u128 * cfg.tdd_stride as u128 * SLOT_DURATION.0 as u128;
            fleet_uptime_ns +=
                ((span_end - first) as u128 * SLOT_DURATION.0 as u128).saturating_sub(dropped_ns);
        }
        cells.push(cell);
    }

    let fleet_dropped = fleet_expected.saturating_sub(fleet_delivered);
    let fleet_avail = if fleet_expected == 0 {
        0.0
    } else {
        fleet_delivered as f64 / fleet_expected as f64
    };
    let dets = detections(trace.iter());
    let mut det_lat = Sampler::new();
    for d in &dets {
        det_lat.record_nanos(d.latency());
    }
    let count_kind = |k: TraceEventKind| trace.of_kind(k).count() as u64;
    let fleet = FleetSlo {
        cells: cells.len() as u64,
        expected_ttis: fleet_expected,
        delivered_ttis: fleet_delivered,
        dropped_ttis: fleet_dropped,
        availability: fleet_avail,
        nines: nines_of(fleet_avail),
        outages: fleet_outages,
        mtbf: (fleet_outages > 0).then(|| Nanos((fleet_uptime_ns / fleet_outages as u128) as u64)),
        mttr: all_ttr
            .mean()
            .filter(|_| !all_ttr.is_empty())
            .map(|m| Nanos(m as u64)),
        ttr_p50: all_ttr.percentile(50.0).map(Nanos),
        ttr_p99: all_ttr.percentile(99.0).map(Nanos),
        ttr_max: all_ttr.max().map(Nanos),
        detections: dets.len() as u64,
        detection_p50: det_lat.percentile(50.0).map(Nanos),
        detection_max: det_lat.max().map(Nanos),
        spare_requests: count_kind(TraceEventKind::SpareRequested),
        spare_grants: count_kind(TraceEventKind::SpareGranted),
        spare_returns: count_kind(TraceEventKind::SpareReturned),
        repairs: count_kind(TraceEventKind::StandbyRepaired),
        worst_cell_nines: cells.iter().map(|c| c.nines).fold(9.0, f64::min),
        worst_cell_dropped_tti_p99: cells.iter().map(|c| c.dropped_tti_p99).max().unwrap_or(0),
    };
    SloReport {
        cells,
        fleet,
        truncated: trace.dropped_oldest() > 0,
        evicted_events: trace.dropped_oldest(),
        tdd_stride: cfg.tdd_stride,
        horizon_slots: cfg.horizon_slots,
    }
}

fn analyze_cell(ru: u64, delivered: &[u64], cfg: &SloConfig) -> CellSlo {
    let stride = cfg.tdd_stride.max(1);
    let mut outages = Vec::new();
    let mut ttr = Sampler::new();
    let mut dropped_hist = LogHistogram::new();
    let (expected, delivered_n) = match (delivered.first(), delivered.last()) {
        (Some(&first), Some(&last)) => {
            for w in delivered.windows(2) {
                let missing = (w[1] - w[0]) / stride;
                let missing = missing.saturating_sub(1);
                if missing > 0 {
                    outages.push(Outage {
                        ru,
                        start_slot: w[0],
                        end_slot: w[1],
                        missing_ttis: missing,
                    });
                }
            }
            let mut span_last = last;
            // Trailing blackout: the cell went quiet before the horizon.
            if cfg.horizon_slots > last {
                let missing = (cfg.horizon_slots - last) / stride;
                if missing > 0 {
                    outages.push(Outage {
                        ru,
                        start_slot: last,
                        end_slot: cfg.horizon_slots,
                        missing_ttis: missing,
                    });
                    span_last = last + missing * stride;
                }
            }
            ((span_last - first) / stride + 1, delivered.len() as u64)
        }
        _ => (
            // No deliveries at all: if a horizon says the cell should
            // have served, charge it in full; else nothing to judge.
            if cfg.horizon_slots > 0 {
                cfg.horizon_slots / stride
            } else {
                0
            },
            delivered.len() as u64,
        ),
    };
    for o in &outages {
        ttr.record_nanos(o.duration(stride));
        dropped_hist.record(o.missing_ttis);
    }
    let dropped = expected.saturating_sub(delivered_n);
    let availability = if expected == 0 {
        0.0
    } else {
        delivered_n as f64 / expected as f64
    };
    let observed_ns = expected as u128 * stride as u128 * SLOT_DURATION.0 as u128;
    let outage_ns: u128 = outages.iter().map(|o| o.duration(stride).0 as u128).sum();
    CellSlo {
        ru,
        expected_ttis: expected,
        delivered_ttis: delivered_n,
        dropped_ttis: dropped,
        availability,
        nines: nines_of(availability),
        mtbf: (!outages.is_empty())
            .then(|| Nanos((observed_ns.saturating_sub(outage_ns) / outages.len() as u128) as u64)),
        mttr: (!outages.is_empty()).then(|| Nanos((outage_ns / outages.len() as u128) as u64)),
        ttr_p50: ttr.percentile(50.0).map(Nanos),
        ttr_p99: ttr.percentile(99.0).map(Nanos),
        ttr_max: ttr.max().map(Nanos),
        dropped_tti_p99: dropped_hist.p99().unwrap_or(0),
        dropped_hist,
        outages,
    }
}

fn ms(n: Option<Nanos>) -> String {
    match n {
        Some(n) => format!("{:.3}", n.0 as f64 / 1e6),
        None => "null".to_string(),
    }
}

fn us(n: Option<Nanos>) -> String {
    match n {
        Some(n) => format!("{:.1}", n.0 as f64 / 1e3),
        None => "null".to_string(),
    }
}

impl SloReport {
    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.truncated {
            let _ = writeln!(
                out,
                "WARNING: trace ring evicted {} events — availability below is \
                 computed from a TRUNCATED window, not the full run",
                self.evicted_events
            );
        }
        let f = &self.fleet;
        let _ = writeln!(
            out,
            "fleet: {} cells, {}/{} TTIs delivered ({} dropped) — availability {:.6} ({:.2} nines)",
            f.cells, f.delivered_ttis, f.expected_ttis, f.dropped_ttis, f.availability, f.nines,
        );
        let _ = writeln!(
            out,
            "  outages {}  MTBF {} ms  MTTR {} ms  TTR p50/p99/max {}/{}/{} ms",
            f.outages,
            ms(f.mtbf),
            ms(f.mttr),
            ms(f.ttr_p50),
            ms(f.ttr_p99),
            ms(f.ttr_max),
        );
        let _ = writeln!(
            out,
            "  detections {} (p50 {} us, max {} us)  spares: {} requested, {} granted, \
             {} returned, {} repairs",
            f.detections,
            us(f.detection_p50),
            us(f.detection_max),
            f.spare_requests,
            f.spare_grants,
            f.spare_returns,
            f.repairs,
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "  cell {}: {}/{} TTIs ({} dropped) — {:.6} avail ({:.2} nines), \
                 {} outages, MTTR {} ms, dropped-TTI p99 {}",
                c.ru,
                c.delivered_ttis,
                c.expected_ttis,
                c.dropped_ttis,
                c.availability,
                c.nines,
                c.outages.len(),
                ms(c.mttr),
                c.dropped_tti_p99,
            );
        }
        out
    }

    /// Deterministic JSON export (hand-rolled like the other exporters;
    /// key order is fixed).
    pub fn to_json(&self) -> String {
        let f = &self.fleet;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"truncated\":{},\"evicted_events\":{},\"tdd_stride\":{},\"horizon_slots\":{},",
            self.truncated, self.evicted_events, self.tdd_stride, self.horizon_slots
        );
        let _ = write!(
            out,
            "\"fleet\":{{\"cells\":{},\"expected_ttis\":{},\"delivered_ttis\":{},\
             \"dropped_ttis\":{},\"availability\":{:.9},\"nines\":{:.3},\"outages\":{},\
             \"mtbf_ms\":{},\"mttr_ms\":{},\"ttr_p50_ms\":{},\"ttr_p99_ms\":{},\"ttr_max_ms\":{},\
             \"detections\":{},\"detection_p50_us\":{},\"detection_max_us\":{},\
             \"spare_requests\":{},\"spare_grants\":{},\"spare_returns\":{},\"repairs\":{},\
             \"worst_cell_nines\":{:.3},\"worst_cell_dropped_tti_p99\":{}}},",
            f.cells,
            f.expected_ttis,
            f.delivered_ttis,
            f.dropped_ttis,
            f.availability,
            f.nines,
            f.outages,
            ms(f.mtbf),
            ms(f.mttr),
            ms(f.ttr_p50),
            ms(f.ttr_p99),
            ms(f.ttr_max),
            f.detections,
            us(f.detection_p50),
            us(f.detection_max),
            f.spare_requests,
            f.spare_grants,
            f.spare_returns,
            f.repairs,
            f.worst_cell_nines,
            f.worst_cell_dropped_tti_p99,
        );
        out.push_str("\"cells\":[");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"ru\":{},\"expected_ttis\":{},\"delivered_ttis\":{},\"dropped_ttis\":{},\
                 \"availability\":{:.9},\"nines\":{:.3},\"outages\":{},\"mtbf_ms\":{},\
                 \"mttr_ms\":{},\"ttr_p50_ms\":{},\"ttr_p99_ms\":{},\"ttr_max_ms\":{},\
                 \"dropped_tti_p99\":{}}}",
                c.ru,
                c.expected_ttis,
                c.delivered_ttis,
                c.dropped_ttis,
                c.availability,
                c.nines,
                c.outages.len(),
                ms(c.mtbf),
                ms(c.mttr),
                ms(c.ttr_p50),
                ms(c.ttr_p99),
                ms(c.ttr_max),
                c.dropped_tti_p99,
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NodeId;
    use crate::time::SlotId;

    fn slot_time(abs: u64) -> Nanos {
        Nanos(abs * SLOT_DURATION.0)
    }

    fn record(tb: &mut TraceBuffer, abs_slot: u64, kind: TraceEventKind, a: u64, b: u64) {
        tb.record_at_slot(
            slot_time(abs_slot),
            NodeId(1),
            SlotId::from_absolute(abs_slot),
            kind,
            a,
            b,
        );
    }

    /// Deliver the UL slot of every TDD cycle in [from, to) for `phy`,
    /// skipping cycles listed in `skip`.
    fn deliver(tb: &mut TraceBuffer, phy: u64, from: u64, to: u64, skip: &[u64]) {
        let mut s = from;
        while s < to {
            if !skip.contains(&s) {
                record(tb, s, TraceEventKind::UlSlotProcessed, s, phy);
            }
            s += 5;
        }
    }

    #[test]
    fn perfect_cadence_is_nine_nines() {
        let mut tb = TraceBuffer::new(4096);
        deliver(&mut tb, 1, 4, 504, &[]);
        let r = analyze(&tb, &SloConfig::default());
        assert_eq!(r.cells.len(), 1);
        let c = &r.cells[0];
        assert_eq!(c.dropped_ttis, 0);
        assert_eq!(c.delivered_ttis, c.expected_ttis);
        assert_eq!(c.availability, 1.0);
        assert_eq!(c.nines, 9.0);
        assert!(c.outages.is_empty());
        assert_eq!(c.mttr, None);
        assert!(!r.truncated);
        assert_eq!(r.fleet.nines, 9.0);
    }

    #[test]
    fn single_gap_yields_one_outage() {
        let mut tb = TraceBuffer::new(4096);
        // 100 cycles, cycles at slots 54..74 missing (4 TTIs dropped).
        deliver(&mut tb, 1, 4, 504, &[54, 59, 64, 69]);
        let r = analyze(&tb, &SloConfig::default());
        let c = &r.cells[0];
        assert_eq!(c.outages.len(), 1);
        let o = &c.outages[0];
        assert_eq!(o.missing_ttis, 4);
        assert_eq!(o.start_slot, 49);
        assert_eq!(o.end_slot, 74);
        assert_eq!(c.dropped_ttis, 4);
        assert_eq!(c.expected_ttis, 100);
        assert_eq!(c.delivered_ttis, 96);
        assert!((c.availability - 0.96).abs() < 1e-12);
        // 4 missing TTIs * 5 slots * 500us = 10 ms outage.
        assert_eq!(c.mttr, Some(Nanos(10_000_000)));
        assert_eq!(c.ttr_max, Some(Nanos(10_000_000)));
        assert_eq!(c.dropped_tti_p99, 4);
        assert_eq!(r.fleet.outages, 1);
        assert_eq!(r.fleet.worst_cell_dropped_tti_p99, 4);
    }

    #[test]
    fn trailing_blackout_charged_against_horizon() {
        let mut tb = TraceBuffer::new(4096);
        // Delivers to slot 249 then dies; horizon says 500 slots.
        deliver(&mut tb, 1, 4, 250, &[]);
        let with_horizon = analyze(
            &tb,
            &SloConfig {
                horizon_slots: 500,
                ..SloConfig::default()
            },
        );
        let without = analyze(&tb, &SloConfig::default());
        assert_eq!(without.cells[0].dropped_ttis, 0);
        let c = &with_horizon.cells[0];
        assert_eq!(c.outages.len(), 1);
        assert!(c.dropped_ttis >= 50, "dropped={}", c.dropped_ttis);
        assert!(c.availability < 0.6);
        assert!(c.nines < 1.0);
    }

    #[test]
    fn silent_cell_with_horizon_is_zero_available() {
        let tb = TraceBuffer::new(64);
        let r = analyze(
            &tb,
            &SloConfig {
                horizon_slots: 1000,
                initial_active: vec![(0, 1)],
                ..SloConfig::default()
            },
        );
        let c = &r.cells[0];
        assert_eq!(c.delivered_ttis, 0);
        assert_eq!(c.expected_ttis, 200);
        assert_eq!(c.availability, 0.0);
        assert_eq!(c.nines, 0.0);
    }

    #[test]
    fn map_flip_attributes_deliveries_to_new_owner() {
        let mut tb = TraceBuffer::new(4096);
        // Two cells: ru 0 on phy 1, ru 1 on phy 3. Cell 0 fails over to
        // phy 2 at slot 100 with a 2-cycle gap.
        deliver(&mut tb, 1, 4, 100, &[]);
        record(&mut tb, 100, TraceEventKind::MapFlip, 0, (1 << 16) | 2);
        deliver(&mut tb, 2, 114, 504, &[]);
        deliver(&mut tb, 3, 4, 504, &[]);
        let r = analyze(
            &tb,
            &SloConfig {
                initial_active: vec![(0, 1), (1, 3)],
                ..SloConfig::default()
            },
        );
        assert_eq!(r.cells.len(), 2);
        let c0 = &r.cells[0];
        let c1 = &r.cells[1];
        assert_eq!(c1.dropped_ttis, 0, "cell 1 never faulted");
        assert_eq!(c1.nines, 9.0);
        assert_eq!(c0.outages.len(), 1, "cell 0 has the failover gap");
        assert!(c0.dropped_ttis >= 1);
        assert!(c0.nines < 9.0);
        assert!(r.fleet.worst_cell_nines < 9.0);
        assert_eq!(r.fleet.cells, 2);
    }

    #[test]
    fn lifecycle_counters_and_detections_surface() {
        let mut tb = TraceBuffer::new(4096);
        deliver(&mut tb, 1, 4, 504, &[]);
        record(
            &mut tb,
            100,
            TraceEventKind::DetectorSaturated,
            1,
            slot_time(100).0 - 400_000,
        );
        record(&mut tb, 101, TraceEventKind::SpareRequested, 0, 1);
        record(&mut tb, 102, TraceEventKind::SpareGranted, 0, (5 << 16) | 1);
        record(&mut tb, 150, TraceEventKind::SpareReturned, 1, 2);
        record(&mut tb, 151, TraceEventKind::StandbyRepaired, 0, 5);
        let r = analyze(&tb, &SloConfig::default());
        assert_eq!(r.fleet.detections, 1);
        assert_eq!(r.fleet.detection_max, Some(Nanos(400_000)));
        assert_eq!(r.fleet.spare_requests, 1);
        assert_eq!(r.fleet.spare_grants, 1);
        assert_eq!(r.fleet.spare_returns, 1);
        assert_eq!(r.fleet.repairs, 1);
    }

    #[test]
    fn truncated_ring_sets_flag_and_warns() {
        let mut tb = TraceBuffer::new(8);
        deliver(&mut tb, 1, 4, 504, &[]);
        assert!(tb.dropped_oldest() > 0);
        let r = analyze(&tb, &SloConfig::default());
        assert!(r.truncated);
        assert!(r.evicted_events > 0);
        assert!(r.to_text().contains("TRUNCATED"));
        assert!(r.to_json().contains("\"truncated\":true"));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut tb = TraceBuffer::new(4096);
        deliver(&mut tb, 1, 4, 504, &[54, 59]);
        let r = analyze(&tb, &SloConfig::default());
        let j = r.to_json();
        for key in [
            "\"truncated\":false",
            "\"fleet\":{",
            "\"availability\":",
            "\"nines\":",
            "\"mttr_ms\":",
            "\"worst_cell_dropped_tti_p99\":",
            "\"cells\":[{",
            "\"ttr_p99_ms\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // No-outage optional stats encode as JSON null, not a number.
        let mut tb2 = TraceBuffer::new(4096);
        deliver(&mut tb2, 1, 4, 504, &[]);
        let j2 = analyze(&tb2, &SloConfig::default()).to_json();
        assert!(j2.contains("\"mttr_ms\":null"));
    }

    #[test]
    fn nines_of_edge_cases() {
        assert_eq!(nines_of(1.0), 9.0);
        assert_eq!(nines_of(0.0), 0.0);
        assert_eq!(nines_of(-0.5), 0.0);
        assert!((nines_of(0.999) - 3.0).abs() < 1e-9);
        assert!((nines_of(0.99999) - 5.0).abs() < 1e-9);
    }
}
