//! Side-channel wall-clock profiler for the slot pipeline.
//!
//! The deterministic trace ([`crate::trace`]) records *simulated* time
//! and must stay byte-identical across worker counts and host machines.
//! Wall-clock measurements — how long the serial prepare, the parallel
//! DSP jobs, and the serial merge actually took on this host — therefore
//! live here, in a profiler buffer that is never hashed and never feeds
//! back into the simulation.
//!
//! The profiler is **disabled by default** and zero-cost when disabled:
//! [`SpanProfiler::span`] returns an inert guard without reading the
//! clock. A deployment opts in with [`Engine::set_profiler`]
//! (`crate::engine::Engine::set_profiler`) before the run; the handle is
//! a cheap `Arc` clone, so PHY nodes can move copies into worker-pool
//! job closures and record spans from any thread.
//!
//! What it collects:
//! - per-stage wall-clock histograms (`slot_prepare`, `slot_jobs`,
//!   `slot_merge`, `dl_encode`, `ul_decode`, `ldpc_decode`, `channel`)
//! - per-TTI totals against a configurable deadline budget, with a
//!   deadline-miss counter (the vRAN "did the slot fit in 500 µs on
//!   this host" question)
//! - a bounded buffer of raw spans exportable as Chrome `trace_event`
//!   JSON for flame-chart inspection
//!
//! [`SpanProfiler::publish`] copies the summary into a
//! [`MetricsRegistry`] on demand; nothing is published implicitly, so
//! default-configured runs keep registry output independent of wall
//! time and worker count.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{LogHistogram, MetricsRegistry};

/// Stage label of the whole-slot span recorded by [`SpanProfiler::complete_slot`].
pub const SLOT_STAGE: &str = "slot_total";

/// Cap on buffered raw spans; beyond it spans still feed the stage
/// histograms but are not kept individually (counted as dropped).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// One recorded wall-clock span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Pipeline stage label (static so recording never allocates).
    pub stage: &'static str,
    /// Absolute slot the work belonged to (0 when not slot-scoped).
    pub slot: u64,
    /// Wall-clock start, nanoseconds since the profiler was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug, Default)]
struct ProfilerState {
    spans: Vec<SpanRecord>,
    spans_dropped: u64,
    stages: BTreeMap<&'static str, LogHistogram>,
    slot_ns: LogHistogram,
    slots: u64,
    deadline_misses: u64,
}

#[derive(Debug)]
struct ProfilerInner {
    epoch: Instant,
    /// Per-TTI wall-clock budget in ns; 0 disables deadline accounting.
    deadline_ns: u64,
    span_capacity: usize,
    state: Mutex<ProfilerState>,
}

impl ProfilerInner {
    fn record(&self, stage: &'static str, slot: u64, start_ns: u64, dur_ns: u64) {
        let mut st = self.state.lock().expect("profiler poisoned");
        if st.spans.len() < self.span_capacity {
            st.spans.push(SpanRecord {
                stage,
                slot,
                start_ns,
                dur_ns,
            });
        } else {
            st.spans_dropped += 1;
        }
        st.stages.entry(stage).or_default().record(dur_ns);
    }
}

/// Cloneable handle to the (optional) profiler. `Send + Sync`: clones
/// may be moved into worker-pool jobs.
#[derive(Debug, Clone, Default)]
pub struct SpanProfiler {
    inner: Option<Arc<ProfilerInner>>,
}

impl SpanProfiler {
    /// The inert profiler: every operation is a no-op and no clock is
    /// read. This is what an engine carries unless a harness opts in.
    pub fn disabled() -> SpanProfiler {
        SpanProfiler { inner: None }
    }

    /// An active profiler with no deadline budget.
    pub fn enabled() -> SpanProfiler {
        SpanProfiler::with_deadline_ns(0)
    }

    /// An active profiler that checks each completed slot against a
    /// wall-clock budget of `deadline_ns` (0 = no budget; a real-time
    /// PHY would use the 500 000 ns slot duration).
    pub fn with_deadline_ns(deadline_ns: u64) -> SpanProfiler {
        SpanProfiler {
            inner: Some(Arc::new(ProfilerInner {
                epoch: Instant::now(),
                deadline_ns,
                span_capacity: DEFAULT_SPAN_CAPACITY,
                state: Mutex::new(ProfilerState::default()),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The configured per-TTI budget, if any.
    pub fn deadline_ns(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|i| i.deadline_ns)
            .filter(|&d| d > 0)
    }

    /// Start timing a pipeline stage; the span is recorded when the
    /// returned guard drops. Inert (no clock read) when disabled.
    pub fn span(&self, stage: &'static str, slot: u64) -> SpanGuard {
        SpanGuard {
            inner: self.inner.as_ref().map(|i| SpanGuardInner {
                profiler: Arc::clone(i),
                stage,
                slot,
                start: Instant::now(),
            }),
        }
    }

    /// Record an externally measured span (e.g. a sub-stage duration
    /// returned by a DSP kernel that was timed inside a worker job).
    pub fn record_span_ns(&self, stage: &'static str, slot: u64, dur_ns: u64) {
        if let Some(inner) = &self.inner {
            let start_ns = inner
                .epoch
                .elapsed()
                .as_nanos()
                .saturating_sub(dur_ns as u128) as u64;
            inner.record(stage, slot, start_ns, dur_ns);
        }
    }

    /// Account one completed TTI: records the whole-slot span, feeds the
    /// slot-time histogram, and checks the deadline budget.
    pub fn complete_slot(&self, slot: u64, elapsed_ns: u64) {
        if let Some(inner) = &self.inner {
            let start_ns = inner
                .epoch
                .elapsed()
                .as_nanos()
                .saturating_sub(elapsed_ns as u128) as u64;
            {
                let mut st = inner.state.lock().expect("profiler poisoned");
                st.slot_ns.record(elapsed_ns);
                st.slots += 1;
                if inner.deadline_ns > 0 && elapsed_ns > inner.deadline_ns {
                    st.deadline_misses += 1;
                }
            }
            inner.record(SLOT_STAGE, slot, start_ns, elapsed_ns);
        }
    }

    /// Snapshot the collected data; `None` when disabled or when no
    /// slot ever completed and no span was recorded.
    pub fn report(&self) -> Option<ProfilerReport> {
        let inner = self.inner.as_ref()?;
        let st = inner.state.lock().expect("profiler poisoned");
        if st.slots == 0 && st.stages.is_empty() {
            return None;
        }
        let stages = st
            .stages
            .iter()
            .map(|(stage, h)| StageProfile {
                stage: (*stage).to_string(),
                count: h.count(),
                min_ns: h.min().unwrap_or(0),
                mean_ns: h.mean().unwrap_or(0.0),
                p50_ns: h.p50().unwrap_or(0),
                p99_ns: h.p99().unwrap_or(0),
                max_ns: h.max().unwrap_or(0),
            })
            .collect();
        Some(ProfilerReport {
            slots: st.slots,
            deadline_ns: inner.deadline_ns,
            deadline_misses: st.deadline_misses,
            slot_p50_ns: st.slot_ns.p50().unwrap_or(0),
            slot_p99_ns: st.slot_ns.p99().unwrap_or(0),
            slot_max_ns: st.slot_ns.max().unwrap_or(0),
            stages,
            spans_kept: st.spans.len(),
            spans_dropped: st.spans_dropped,
        })
    }

    /// Copy the summary into a metrics registry under the `profiler`
    /// scope. Explicit and on-demand: harnesses that want wall-clock
    /// data in their metrics dump call this after the run; nothing in
    /// the engine does, so registry contents of default runs stay
    /// machine-independent.
    pub fn publish(&self, registry: &mut MetricsRegistry) {
        let Some(inner) = &self.inner else { return };
        let st = inner.state.lock().expect("profiler poisoned");
        registry.set_counter("profiler", "slots", st.slots);
        registry.set_counter("profiler", "deadline_misses", st.deadline_misses);
        registry.set_counter("profiler", "spans_dropped", st.spans_dropped);
        if inner.deadline_ns > 0 {
            registry.set_gauge("profiler", "deadline_ns", inner.deadline_ns as i64);
        }
        *registry.histogram_mut("profiler", "slot_ns") = st.slot_ns.clone();
        for (stage, h) in &st.stages {
            *registry.histogram_mut("profiler", &format!("{stage}_ns")) = h.clone();
        }
    }

    /// Emit buffered spans as Chrome `trace_event` JSON ("X" complete
    /// events, one thread row per stage) — load in `chrome://tracing`
    /// or Perfetto next to the simulated-time trace.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return write!(w, "{{\"traceEvents\":[]}}");
        };
        let st = inner.state.lock().expect("profiler poisoned");
        let mut tids: BTreeMap<&'static str, usize> = BTreeMap::new();
        for s in &st.spans {
            let next = tids.len() + 1;
            tids.entry(s.stage).or_insert(next);
        }
        writeln!(w, "{{\"traceEvents\":[")?;
        for (i, s) in st.spans.iter().enumerate() {
            let comma = if i + 1 == st.spans.len() { "" } else { "," };
            writeln!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"profiler\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"slot\":{}}}}}{comma}",
                s.stage,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                tids[s.stage],
                s.slot,
            )?;
        }
        writeln!(w, "]}}")
    }
}

struct SpanGuardInner {
    profiler: Arc<ProfilerInner>,
    stage: &'static str,
    slot: u64,
    start: Instant,
}

/// RAII guard returned by [`SpanProfiler::span`]; records on drop.
pub struct SpanGuard {
    inner: Option<SpanGuardInner>,
}

impl SpanGuard {
    /// Elapsed nanoseconds so far (0 when the profiler is disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|g| g.start.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            let dur_ns = g.start.elapsed().as_nanos() as u64;
            let start_ns = g.start.duration_since(g.profiler.epoch).as_nanos() as u64;
            g.profiler.record(g.stage, g.slot, start_ns, dur_ns);
        }
    }
}

/// Fixed-size wall-clock summary of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    pub stage: String,
    pub count: u64,
    pub min_ns: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// Snapshot of everything the profiler collected.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerReport {
    /// TTIs accounted via [`SpanProfiler::complete_slot`].
    pub slots: u64,
    /// Configured budget (0 = none).
    pub deadline_ns: u64,
    /// Slots whose wall-clock total exceeded the budget.
    pub deadline_misses: u64,
    pub slot_p50_ns: u64,
    pub slot_p99_ns: u64,
    pub slot_max_ns: u64,
    /// Per-stage summaries, sorted by stage name.
    pub stages: Vec<StageProfile>,
    pub spans_kept: usize,
    pub spans_dropped: u64,
}

impl ProfilerReport {
    /// Human-readable per-stage deadline profile.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "slot-deadline profile: {} slots, p50 {:.1} us, p99 {:.1} us, max {:.1} us",
            self.slots,
            self.slot_p50_ns as f64 / 1e3,
            self.slot_p99_ns as f64 / 1e3,
            self.slot_max_ns as f64 / 1e3,
        );
        if self.deadline_ns > 0 {
            let _ = writeln!(
                out,
                "  budget {:.1} us: {} deadline misses ({:.4}% of slots)",
                self.deadline_ns as f64 / 1e3,
                self.deadline_misses,
                if self.slots > 0 {
                    100.0 * self.deadline_misses as f64 / self.slots as f64
                } else {
                    0.0
                },
            );
        }
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<14} n={:<8} p50={:>9.1}us p99={:>9.1}us max={:>9.1}us mean={:>9.1}us",
                s.stage,
                s.count,
                s.p50_ns as f64 / 1e3,
                s.p99_ns as f64 / 1e3,
                s.max_ns as f64 / 1e3,
                s.mean_ns / 1e3,
            );
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(
                out,
                "  ({} spans kept, {} dropped beyond buffer capacity)",
                self.spans_kept, self.spans_dropped
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = SpanProfiler::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.deadline_ns(), None);
        {
            let g = p.span("slot_prepare", 7);
            assert_eq!(g.elapsed_ns(), 0);
        }
        p.complete_slot(7, 1_000_000);
        p.record_span_ns("ldpc_decode", 7, 500);
        assert!(p.report().is_none());
        let mut reg = MetricsRegistry::new();
        p.publish(&mut reg);
        assert_eq!(reg.counter("profiler", "slots"), 0);
        let mut buf = Vec::new();
        p.write_chrome_trace(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn spans_and_slots_accumulate() {
        let p = SpanProfiler::with_deadline_ns(1_000);
        assert_eq!(p.deadline_ns(), Some(1_000));
        {
            let _g = p.span("slot_prepare", 4);
            std::hint::black_box(0u64);
        }
        p.record_span_ns("ldpc_decode", 4, 750);
        p.complete_slot(4, 500); // within budget
        p.complete_slot(9, 2_000); // miss
        let r = p.report().expect("enabled profiler has a report");
        assert_eq!(r.slots, 2);
        assert_eq!(r.deadline_misses, 1);
        assert_eq!(r.deadline_ns, 1_000);
        let names: Vec<&str> = r.stages.iter().map(|s| s.stage.as_str()).collect();
        assert!(names.contains(&"slot_prepare"));
        assert!(names.contains(&"ldpc_decode"));
        assert!(names.contains(&SLOT_STAGE));
        let ldpc = r.stages.iter().find(|s| s.stage == "ldpc_decode").unwrap();
        assert_eq!(ldpc.count, 1);
        assert_eq!(ldpc.max_ns, 750);
        let text = r.to_text();
        assert!(text.contains("deadline misses"));
        assert!(text.contains("ldpc_decode"));
    }

    #[test]
    fn publish_exposes_counters_and_histograms() {
        let p = SpanProfiler::with_deadline_ns(100);
        p.complete_slot(0, 50);
        p.complete_slot(1, 200);
        let mut reg = MetricsRegistry::new();
        p.publish(&mut reg);
        assert_eq!(reg.counter("profiler", "slots"), 2);
        assert_eq!(reg.counter("profiler", "deadline_misses"), 1);
        assert_eq!(reg.gauge("profiler", "deadline_ns"), Some(100));
        assert_eq!(reg.histogram("profiler", "slot_ns").unwrap().count(), 2);
        assert!(reg.histogram("profiler", "slot_total_ns").is_some());
        // Publishing is a snapshot: repeating does not double-count.
        p.publish(&mut reg);
        assert_eq!(reg.counter("profiler", "slots"), 2);
        assert_eq!(reg.histogram("profiler", "slot_ns").unwrap().count(), 2);
    }

    #[test]
    fn chrome_trace_emits_complete_events() {
        let p = SpanProfiler::enabled();
        p.record_span_ns("ul_decode", 12, 4_000);
        p.complete_slot(12, 9_000);
        let mut buf = Vec::new();
        p.write_chrome_trace(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"name\":\"ul_decode\""));
        assert!(s.contains("\"slot\":12"));
        assert!(s.ends_with("]}\n"));
    }

    #[test]
    fn span_buffer_is_bounded() {
        let p = SpanProfiler::enabled();
        let inner = p.inner.as_ref().unwrap();
        for i in 0..(inner.span_capacity as u64 + 10) {
            p.record_span_ns("channel", i, 1);
        }
        let r = p.report().unwrap();
        assert_eq!(r.spans_kept, DEFAULT_SPAN_CAPACITY);
        assert_eq!(r.spans_dropped, 10);
        // The histogram still saw everything.
        let ch = r.stages.iter().find(|s| s.stage == "channel").unwrap();
        assert_eq!(ch.count, DEFAULT_SPAN_CAPACITY as u64 + 10);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let p = SpanProfiler::enabled();
        let clones: Vec<SpanProfiler> = (0..4).map(|_| p.clone()).collect();
        let handles: Vec<_> = clones
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    for s in 0..100u64 {
                        c.record_span_ns("ul_decode", s, 10);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let r = p.report().unwrap();
        let d = r.stages.iter().find(|s| s.stage == "ul_decode").unwrap();
        assert_eq!(d.count, 400);
    }
}
